"""Rete network node types.

The five node types of the paper's §2: root (held by the network), t-const,
α-memory, and, and β-memory. Memory nodes are page-backed, so maintaining
them charges disk I/O; t-const screens charge ``C1`` per token tested; and
and-node probes charge the page reads of the opposite memory plus ``C1`` per
joined candidate pair.

Activation is batched per update transaction: a node receives the full list
of tokens the transaction produced for it, applies them to its memory in one
page-deduplicated pass (the paper's ``y(n, m, 2fl)`` refresh accounting),
and forwards the batch. Only one base relation changes per transaction (the
paper's update model), so the opposite input of an and-node is always
quiescent while a batch flows — the classic Rete ordering anomaly cannot
arise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional

from repro.query.predicate import Predicate, compiled_column_matcher
from repro.rete.tokens import Token
from repro.sim import CostClock
from repro.storage.columnar import ColumnBatch, columnar_enabled
from repro.storage.matstore import MaterializedStore
from repro.storage.tuples import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class ReteNode:
    """Base node: named, with downstream successors."""

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.successors: list["ReteNode"] = []
        self.ref_count = 0  # number of procedures whose network includes this node

    def add_successor(self, node: "ReteNode") -> None:
        if node not in self.successors:
            self.successors.append(node)

    def receive(
        self, tokens: list[Token], clock: CostClock, source: Optional["ReteNode"]
    ) -> None:
        raise NotImplementedError

    def _forward(self, tokens: list[Token], clock: CostClock) -> None:
        if not tokens:
            return
        for successor in self.successors:
            successor.receive(tokens, clock, source=self)


class TConstNode(ReteNode):
    """Tests tokens against a constant condition.

    Each token screened costs ``C1``. Thanks to the constant-test
    discrimination index, the network only routes a token here when it is a
    plausible match, so the expected charge per update transaction is the
    paper's ``C1 * f * 2l`` per distinct condition.
    """

    def __init__(
        self, key: Hashable, relation: str, predicate: Predicate, schema: Schema
    ) -> None:
        super().__init__(key)
        self.relation = relation
        self.predicate = predicate
        self.schema = schema
        self._matcher = predicate.bind(schema)

    def receive(
        self, tokens: list[Token], clock: CostClock, source: Optional[ReteNode]
    ) -> None:
        if tokens and columnar_enabled():
            # One C1 per token, charged in aggregate; the compiled column
            # matcher screens the whole wave in one vector pass.
            clock.charge_cpu(len(tokens))
            matcher = compiled_column_matcher(self.predicate, self.schema)
            batch = ColumnBatch(self.schema, [token.row for token in tokens])
            mask = matcher(batch)
            passing = [token for token, ok in zip(tokens, mask) if ok]
        else:
            passing = []
            for token in tokens:
                clock.charge_cpu(1)
                if self._matcher(token.row):
                    passing.append(token)
        self._forward(passing, clock)


class MemoryNode(ReteNode):
    """Base of α- and β-memories: a page-backed materialised view.

    Applying a token batch charges one read plus one write per distinct page
    touched; the batch is then forwarded unchanged.
    """

    def __init__(self, key: Hashable, store: MaterializedStore, schema: Schema) -> None:
        super().__init__(key)
        self.store = store
        self.schema = schema

    #: Phase label charged while this memory applies a token batch
    #: (``rete.alpha`` / ``rete.beta``); see :mod:`repro.obs`.
    phase = "rete.alpha"

    def receive(
        self, tokens: list[Token], clock: CostClock, source: Optional[ReteNode]
    ) -> None:
        if not tokens:
            return
        inserts = [t.row for t in tokens if t.is_insert]
        deletes = [t.row for t in tokens if not t.is_insert]
        tracer = clock.tracer
        if tracer is None:
            self.store.apply_delta(inserts, deletes)
        else:
            with tracer.span(self.phase):
                self.store.apply_delta(inserts, deletes)
        self._forward(tokens, clock)


class AlphaMemoryNode(MemoryNode):
    """Holds the output of a t-const chain (a selection of one relation)."""

    phase = "rete.alpha"


class BetaMemoryNode(MemoryNode):
    """Holds the output of an and-node (a join result)."""

    phase = "rete.beta"


class AndNode(ReteNode):
    """A join node: ``left.left_field = right.right_field``.

    A token arriving from one input is probed against the *opposite* memory;
    each matching ``(token, tuple)`` pair forms a combined token with the
    original tag. Probe I/O is the page reads of matching tuples in the
    opposite memory — the paper's ``Y5``/``Y8`` terms. The paper's model
    ignores the CPU cost of the join test itself; the simulator charges
    ``C1`` per candidate pair, a deliberate (tiny) extra honesty documented
    in EXPERIMENTS.md.
    """

    def __init__(
        self,
        key: Hashable,
        left: MemoryNode,
        right: MemoryNode,
        left_field: str,
        right_field: str,
    ) -> None:
        super().__init__(key)
        self.left = left
        self.right = right
        self.left_field = left_field
        self.right_field = right_field
        self._left_pos = left.schema.index_of(left_field)
        self._right_pos = right.schema.index_of(right_field)
        left.add_successor(self)
        right.add_successor(self)

    def output_schema(self) -> Schema:
        return self.left.schema.concat(self.right.schema)

    def receive(
        self, tokens: list[Token], clock: CostClock, source: Optional[ReteNode]
    ) -> None:
        if source is self.left:
            from_left = True
        elif source is self.right:
            from_left = False
        else:
            raise ValueError(
                f"and-node {self.key!r} received tokens from a non-input node"
            )
        tracer = clock.tracer
        if tracer is None:
            joined = self._probe(tokens, from_left=from_left, clock=clock)
        else:
            # Probe I/O and join screens are β-network work.
            with tracer.span("rete.beta"):
                joined = self._probe(tokens, from_left=from_left, clock=clock)
        self._forward(joined, clock)

    def _probe(
        self, tokens: list[Token], from_left: bool, clock: CostClock
    ) -> list[Token]:
        if from_left:
            key_pos = self._left_pos
            opposite = self.right
            probe_field = self.right_field
        else:
            key_pos = self._right_pos
            opposite = self.left
            probe_field = self.left_field
        values = {token.row[key_pos] for token in tokens}
        matches = opposite.store.probe_many(probe_field, values)
        out: list[Token] = []
        for token in tokens:
            for opposite_row in matches.get(token.row[key_pos], ()):
                out.append(token.combined_with(opposite_row, other_on_right=from_left))
        if out:
            # C1 per candidate pair, charged in aggregate (float-exact: the
            # per-pair charges sum to the same total).
            clock.charge_cpu(len(out))
        return out
