"""Constant-test discrimination index.

The paper's per-update screening cost is ``N1 * C1 * f * l`` — each
procedure screens only the changed tuples that *fall inside its selection
interval*, not all of them. That presupposes an index over the t-const
constants (this is the same "rule indexing" idea the paper cites for
i-locks): given a changed tuple, find the conditions it satisfies without
testing every condition.

:class:`ConstantTestIndex` provides that: registered entries are keyed by
``(relation, field)`` and looked up by field value. The index itself is a
memory-resident structure and charged as free, like hash directories; the
*screen* of the tuple against each matching condition's full predicate is
what costs ``C1``, charged by the caller per candidate returned.

Interval entries are kept in a sorted endpoint list with bisection, so
lookups cost O(log n + matches) in real time (the simulated clock does not
care, but the simulator has to actually run).
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Any, Hashable, Iterator

import numpy as np

from repro.query.predicate import KeyInterval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.columnar import ColumnBatch


class ConstantTestIndex:
    """Maps field values to the registered conditions containing them."""

    def __init__(self) -> None:
        # (relation, field) -> sorted list of (lo_key, interval, handle)
        self._by_field: dict[tuple[str, str], list[tuple[Any, KeyInterval, Hashable]]] = {}
        # (relation,) -> handles of conditions with no usable interval, which
        # must be screened against every changed tuple of the relation.
        self._unindexed: dict[str, list[Hashable]] = {}
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def add_interval(
        self, relation: str, interval: KeyInterval, handle: Hashable
    ) -> None:
        """Register ``handle`` for tuples of ``relation`` inside ``interval``."""
        entries = self._by_field.setdefault((relation, interval.field), [])
        lo_key = interval.lo if interval.lo is not None else _Infinity()
        bisect.insort(entries, (lo_key, interval, handle), key=lambda e: _SortKey(e[0]))
        self._size += 1

    def add_catch_all(self, relation: str, handle: Hashable) -> None:
        """Register a condition that cannot be discriminated (e.g. ``!=``):
        it is a candidate for every change to ``relation``."""
        self._unindexed.setdefault(relation, []).append(handle)
        self._size += 1

    def candidates(
        self, relation: str, field_values: dict[str, Any]
    ) -> Iterator[Hashable]:
        """Handles of all conditions a tuple with ``field_values`` may
        satisfy. The caller screens each candidate at ``C1``."""
        yield from self._unindexed.get(relation, ())
        for (rel, field), entries in self._by_field.items():
            if rel != relation or field not in field_values:
                continue
            value = field_values[field]
            # Entries are sorted by interval lower bound; every entry whose
            # lo <= value is a containment candidate, filtered by the full
            # interval test.
            idx = bisect.bisect_right(
                entries, _SortKey(value), key=lambda e: _SortKey(e[0])
            )
            for _lo, interval, handle in entries[:idx]:
                if interval.contains(value):
                    yield handle

    def candidates_batch(
        self, relation: str, batch: "ColumnBatch"
    ) -> list[tuple[Hashable, np.ndarray]]:
        """Columnar :meth:`candidates`: each registered condition tests its
        whole column at once instead of being probed per changed tuple.

        Returns ``(handle, row_indices)`` pairs — ``row_indices`` are the
        ascending positions in ``batch`` the condition may match. Pairs come
        in the same static order :meth:`candidates` yields handles for any
        single row (catch-alls first, then indexed entries), so
        ``(row_indices[0], pair position)`` reproduces the per-row
        interleaving of the scalar loop. Conditions matching no row are
        dropped (the scalar path never yields them either).
        """
        n = len(batch)
        out: list[tuple[Hashable, np.ndarray]] = []
        if n == 0:
            return out
        all_rows: np.ndarray | None = None
        for handle in self._unindexed.get(relation, ()):
            if all_rows is None:
                all_rows = np.arange(n)
            out.append((handle, all_rows))
        schema = batch.schema
        for (rel, field), entries in self._by_field.items():
            if rel != relation or not schema.has_field(field):
                continue
            column = batch.column(field)
            for _lo, interval, handle in entries:
                hits = np.flatnonzero(interval.contains_mask(column))
                if len(hits):
                    out.append((handle, hits))
        return out


class _Infinity:
    """Sorts below every other value (an open lower bound)."""

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, _Infinity)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Infinity)

    def __hash__(self) -> int:
        return hash("_Infinity")


class _SortKey:
    """Total order wrapper: -inf sentinel < any concrete value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if isinstance(a, _Infinity):
            return not isinstance(b, _Infinity)
        if isinstance(b, _Infinity):
            return False
        return a < b

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return not self < other and not other < self
