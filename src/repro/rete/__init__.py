"""The Rete discrimination network (RVM substrate).

Implements the network of [Han87b] / [For82] used by the paper's *shared*
Update Cache strategy: a root node broadcasts ±tokens describing base-table
changes; t-const nodes test ``attribute op constant`` conditions; α-memories
materialise selection results; and-nodes join tokens against the opposite
memory; β-memories materialise join results. Memory contents are page-backed
(:class:`repro.storage.MaterializedStore`), so maintaining and reading them
charges the same I/O the paper's cost model counts.

Shared subexpressions are detected structurally: building two procedures
whose plans contain an identical subnetwork (same relation, same predicate,
same join spec) reuses the existing nodes — this is how a type-P1 procedure's
α-memory serves as the shared left input of SF of the type-P2 procedures.
"""

from repro.rete.tokens import Token
from repro.rete.discrimination import ConstantTestIndex
from repro.rete.nodes import (
    AlphaMemoryNode,
    AndNode,
    BetaMemoryNode,
    MemoryNode,
    ReteNode,
    TConstNode,
)
from repro.rete.network import ReteNetwork

__all__ = [
    "Token",
    "ConstantTestIndex",
    "ReteNode",
    "TConstNode",
    "MemoryNode",
    "AlphaMemoryNode",
    "BetaMemoryNode",
    "AndNode",
    "ReteNetwork",
]
