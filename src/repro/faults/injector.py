"""Deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` describes *what can go wrong*: per-point firing
rates for a seeded RNG, plus an explicit schedule of ``(point,
occurrence)`` entries for reproducing exact scenarios. A
:class:`FaultInjector` executes the plan at the named fault points the
storage/recovery layers expose:

========== =============================================================
point      fires when
========== =============================================================
disk.read  :meth:`repro.storage.disk.DiskManager.read_page`
disk.write :meth:`repro.storage.disk.DiskManager.write_page`
wal.flush  :meth:`repro.recovery.wal.WriteAheadLog.flush`
cache.read :meth:`repro.storage.matstore.MaterializedStore.read_all`
op.access  operation boundary before a procedure access (crash only)
op.update  operation boundary before an update transaction (crash only)
========== =============================================================

Sharded chaos namespaces every point per shard: plan entries prefixed
``shard.<i>.`` (e.g. ``shard.2.disk.read``, ``shard.0.shard.crash``)
scope to shard ``i``'s own :class:`ShardFaultInjector`, derived from the
campaign plan via :meth:`FaultPlan.for_shard` with a
``derive_seed(seed, "shard", i)`` child seed so each shard's fault
stream is stable under shard-count changes. The extra ``shard.crash``
point is a shard-boundary decision: a ``CRASH`` there kills exactly one
shard's i-locks/buffer/WAL/Rete while the rest keep serving.

Three fault kinds: ``TRANSIENT`` (the injector retries with simulated-
time exponential backoff, charged under ``fault.recovery``; the retry
budget exhausting raises :class:`PersistentIOError`), ``TORN_PAGE``
(the page is corrupted in place — detected later by its checksum), and
``CRASH`` (raises :class:`CrashSignal`; the supervisor restarts).

Determinism: the injector draws from its own ``random.Random(seed)``
and counts decision *occurrences* per point, so the same plan against
the same (deterministic) run fires the same faults every time. While
:meth:`suspended` — recovery and oracle work — decisions neither draw
nor count, keeping the live-run sequence unperturbed.

Zero-overhead guard: nothing constructs an injector unless a chaos run
asks for one, and every call site guards on ``disk.injector is None``
(the same pattern as ``clock.tracer is None``), so ordinary runs are
bit-identical with the subsystem present.
"""

from __future__ import annotations

import enum
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.faults.errors import (
    CrashSignal,
    PageCorruptionError,
    PersistentIOError,
    ShardCrashSignal,
)
from repro.sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import CostClock
    from repro.storage.matstore import MaterializedStore

#: Phase charged for retry backoff and repair work (see obs.tracer.PHASES).
RECOVERY_PHASE = "fault.recovery"


class FaultKind(enum.Enum):
    """What an injected fault does."""

    TRANSIENT = "transient"
    TORN_PAGE = "torn_page"
    CRASH = "crash"


@dataclass(frozen=True)
class ScheduledFault:
    """Fire ``kind`` at the ``occurrence``-th decision (1-based) taken at
    ``point`` — exact, rate-independent reproduction of a scenario."""

    point: str
    occurrence: int
    kind: FaultKind


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seedable description of a fault campaign.

    Args:
        seed: injector RNG seed.
        rates: ``point -> {kind: probability}`` per-decision firing rates.
        schedule: explicit :class:`ScheduledFault` entries (checked before
            the rates; occurrences are counted per point).
        max_faults: total injection budget (``None`` = unlimited) — the
            "N-event fault schedule" knob.
        max_retries: transient retries before :class:`PersistentIOError`.
        backoff_base_ms: first retry delay; doubles per attempt
            (simulated time, charged under ``fault.recovery``).
        torn_file_prefixes: files eligible for torn-page corruption. Base
            relations are excluded by default: they are the recovery
            ground truth, so tearing them would make the oracle
            unsatisfiable. A TORN_PAGE decision on an ineligible file
            downgrades to a transient.
    """

    seed: int = 0
    rates: dict[str, dict[FaultKind, float]] = field(default_factory=dict)
    schedule: tuple[ScheduledFault, ...] = ()
    max_faults: int | None = None
    max_retries: int = 4
    backoff_base_ms: float = 5.0
    torn_file_prefixes: tuple[str, ...] = ("cache.", "avm.", "rete.")

    @staticmethod
    def seeded(
        seed: int, max_faults: int | None = 100, scale: float = 1.0
    ) -> "FaultPlan":
        """The default chaos campaign: a little of everything, capped at
        ``max_faults`` injections. ``scale`` multiplies every rate."""
        rates = {
            "disk.read": {FaultKind.TRANSIENT: 0.005},
            "disk.write": {
                FaultKind.TRANSIENT: 0.005,
                FaultKind.TORN_PAGE: 0.01,
            },
            "cache.read": {FaultKind.TORN_PAGE: 0.05},
            "wal.flush": {
                FaultKind.TRANSIENT: 0.05,
                FaultKind.CRASH: 0.02,
            },
            "op.access": {FaultKind.CRASH: 0.02},
            "op.update": {FaultKind.CRASH: 0.05},
        }
        if scale != 1.0:
            rates = {
                point: {kind: min(1.0, rate * scale) for kind, rate in kinds.items()}
                for point, kinds in rates.items()
            }
        return FaultPlan(seed=seed, rates=rates, max_faults=max_faults)

    def for_shard(self, shard_id: int) -> "FaultPlan":
        """Derive shard ``shard_id``'s plan from this campaign plan.

        Rates: unprefixed entries apply to every shard (each shard draws
        them from its own derived stream); ``shard.<i>.``-prefixed
        entries scope to shard ``i`` alone (stripped here, overriding any
        unprefixed entry for the same point); other shards' prefixed
        entries are dropped. Schedule: only this shard's prefixed entries
        carry over — unprefixed scheduled faults belong to the global
        (facade-level) injector, which keeps legacy schedules meaning
        exactly what they meant before sharding.
        """
        prefix = f"shard.{shard_id}."
        rates: dict[str, dict[FaultKind, float]] = {
            point: dict(kinds)
            for point, kinds in self.rates.items()
            if not _shard_scoped(point)
        }
        for point, kinds in self.rates.items():
            if point.startswith(prefix):
                rates[point[len(prefix) :]] = dict(kinds)
        schedule = tuple(
            ScheduledFault(
                entry.point[len(prefix) :], entry.occurrence, entry.kind
            )
            for entry in self.schedule
            if entry.point.startswith(prefix)
        )
        return FaultPlan(
            seed=derive_seed(self.seed, "shard", shard_id),
            rates=rates,
            schedule=schedule,
            max_faults=self.max_faults,
            max_retries=self.max_retries,
            backoff_base_ms=self.backoff_base_ms,
            torn_file_prefixes=self.torn_file_prefixes,
        )


def _shard_scoped(point: str) -> bool:
    """True for ``shard.<i>.<point>`` entries (any shard id). The bare
    ``shard.crash`` boundary point is *not* scoped — its second segment
    is a kind, not an id."""
    parts = point.split(".", 2)
    return len(parts) == 3 and parts[0] == "shard" and parts[1].isdigit()


#: Deterministic kind-evaluation order for rate draws.
_KIND_ORDER = (FaultKind.TRANSIENT, FaultKind.TORN_PAGE, FaultKind.CRASH)


class FaultInjector:
    """Executes a :class:`FaultPlan` at the named fault points.

    Inert until :meth:`arm` — chaos runs build the database and warm the
    caches first, then arm — and silent while :meth:`suspended` (recovery
    and oracle verification run on a quiesced system).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._schedule: dict[tuple[str, int], FaultKind] = {
            (entry.point, entry.occurrence): entry.kind
            for entry in plan.schedule
        }
        self.armed = False
        self._paused = 0
        self.occurrences: dict[str, int] = {}
        self.injected: dict[str, dict[str, int]] = {}
        self.total_injected = 0
        self.retries = 0
        self.backoff_ms_total = 0.0
        self.torn_pages = 0
        self.corruptions_detected = 0
        self.crashes = 0

    # -- lifecycle --------------------------------------------------------

    def arm(self) -> None:
        """Start injecting (call after warm-up, once wired into storage)."""
        self.armed = True

    @property
    def active(self) -> bool:
        return self.armed and self._paused == 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No injection inside: recovery/oracle work on a quiesced system.
        Decisions made here neither draw from the RNG nor count, so the
        live-run fault sequence is unaffected."""
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    # -- decisions --------------------------------------------------------

    def decide(self, point: str) -> FaultKind | None:
        """One fault decision at ``point``: schedule first, then rates."""
        if not self.active:
            return None
        plan = self.plan
        if plan.max_faults is not None and self.total_injected >= plan.max_faults:
            return None
        count = self.occurrences.get(point, 0) + 1
        self.occurrences[point] = count
        kind = self._schedule.get((point, count))
        if kind is None:
            point_rates = plan.rates.get(point)
            if point_rates:
                for candidate in _KIND_ORDER:
                    rate = point_rates.get(candidate, 0.0)
                    if rate and self._rng.random() < rate:
                        kind = candidate
                        break
        if kind is not None:
            per_point = self.injected.setdefault(point, {})
            per_point[kind.value] = per_point.get(kind.value, 0) + 1
            self.total_injected += 1
        return kind

    def check_crash(self, point: str) -> bool:
        """Operation-boundary crash point: only ``CRASH`` is meaningful
        here (other kinds describe I/O and are ignored if scheduled)."""
        if self.decide(point) is FaultKind.CRASH:
            self.crashes += 1
            return True
        return False

    # -- I/O fault points -------------------------------------------------

    def _crash_signal(self, point: str) -> CrashSignal:
        """The signal a CRASH decision raises; shard injectors override
        this so a crash carries its fault-domain id."""
        return CrashSignal(point)

    def _torn_allowed(self, file_name: str | None) -> bool:
        if file_name is None:
            return False
        return file_name.startswith(self.plan.torn_file_prefixes)

    def _backoff(self, clock: "CostClock", attempt: int) -> None:
        """Charge one exponential-backoff delay under ``fault.recovery``."""
        delay = self.plan.backoff_base_ms * (2 ** (attempt - 1))
        self.backoff_ms_total += delay
        tracer = clock.tracer
        if tracer is None:
            clock.charge_fixed(delay)
            return
        tracer.event("fault.retry")
        with tracer.span(RECOVERY_PHASE):
            clock.charge_fixed(delay)

    def _io_point(
        self,
        point: str,
        clock: "CostClock",
        page=None,
        file_name: str | None = None,
    ) -> None:
        """Guard one I/O: retry transients (bounded, backed off), corrupt
        torn-eligible pages in place, escalate crashes."""
        attempt = 0
        while True:
            kind = self.decide(point)
            if kind is None:
                return
            if kind is FaultKind.CRASH:
                self.crashes += 1
                raise self._crash_signal(point)
            if (
                kind is FaultKind.TORN_PAGE
                and page is not None
                and self._torn_allowed(file_name)
            ):
                page.mark_torn()
                self.torn_pages += 1
                return
            # TRANSIENT (or a torn decision with nothing eligible to tear).
            attempt += 1
            self.retries += 1
            if attempt > self.plan.max_retries:
                raise PersistentIOError(point, attempts=attempt)
            self._backoff(clock, attempt)

    def before_read(self, file_name: str, page, clock: "CostClock") -> None:
        self._io_point("disk.read", clock, page=page, file_name=file_name)

    def before_write(self, file_name: str, page, clock: "CostClock") -> None:
        self._io_point("disk.write", clock, page=page, file_name=file_name)

    def on_wal_flush(self, clock: "CostClock") -> None:
        self._io_point("wal.flush", clock)

    def on_cache_read(
        self, store: "MaterializedStore", clock: "CostClock"
    ) -> None:
        """``cache.read`` point: a torn decision corrupts one (seeded-
        random) occupied page of the store about to be read, so the
        in-flight read detects it via the page checksum."""
        attempt = 0
        while True:
            kind = self.decide("cache.read")
            if kind is None:
                return
            if kind is FaultKind.CRASH:
                self.crashes += 1
                raise self._crash_signal("cache.read")
            if kind is FaultKind.TORN_PAGE:
                disk = store.buffer.disk
                occupied = [
                    page_no
                    for page_no in range(store.num_pages)
                    if not disk.peek_page(store.name, page_no).is_empty
                ]
                if occupied:
                    victim = self._rng.choice(occupied)
                    disk.peek_page(store.name, victim).mark_torn()
                    self.torn_pages += 1
                return
            attempt += 1
            self.retries += 1
            if attempt > self.plan.max_retries:
                raise PersistentIOError("cache.read", attempts=attempt)
            self._backoff(clock, attempt)

    # -- detection --------------------------------------------------------

    def corruption_detected(
        self, file_name: str, page_no: int, clock: "CostClock"
    ) -> None:
        """Called by the disk when a checksum fails verification."""
        self.corruptions_detected += 1
        tracer = clock.tracer
        if tracer is not None:
            tracer.event("fault.corruption.detected")
        raise PageCorruptionError(file_name, page_no)

    # -- reporting --------------------------------------------------------

    def fault_counts(self) -> dict[str, dict[str, int]]:
        """``point -> {kind: count}`` of everything injected so far."""
        return {
            point: dict(kinds) for point, kinds in sorted(self.injected.items())
        }


class ShardFaultInjector(FaultInjector):
    """One shard's fault domain: a :class:`FaultInjector` over the plan
    :meth:`FaultPlan.for_shard` derives, whose crashes identify the shard
    so the supervisor can recover one fault domain instead of the world.
    """

    def __init__(self, plan: FaultPlan, shard_id: int) -> None:
        super().__init__(plan.for_shard(shard_id))
        self.shard_id = shard_id

    def _crash_signal(self, point: str) -> CrashSignal:
        return ShardCrashSignal(point, self.shard_id)

    def check_shard_crash(self) -> bool:
        """Shard-boundary ``shard.crash`` decision (the facade raises)."""
        return self.check_crash("shard.crash")
