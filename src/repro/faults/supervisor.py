"""Recovery supervision: retry, degradation ladder, crash-restart, oracle.

The :class:`RecoverySupervisor` sits between a strategy and the fault
injector and implements the policy layer:

- **Transient faults** never reach it — the injector retries them at the
  I/O call site with bounded exponential backoff (simulated time,
  charged under the ``fault.recovery`` phase).
- **Degradation ladder (UC -> CI -> AR)** for a failed access: when the
  cached value cannot be read (torn page detected by its checksum, or a
  persistent I/O error), the supervisor recomputes the value from the
  base relations, repairs the cache, and serves the answer — the Cache
  and Invalidate rung. If the repair itself faults persistently, it
  falls to the last rung: serve the access Always-Recompute style on a
  quiesced system and leave the cache for a later repair.
- **Crash-restart**: a :class:`CrashSignal` loses volatile state. The
  supervisor asks the strategy to recover (WAL replay for the logged
  scheme, conservative full rebuild where no validity metadata exists),
  recompute-repairs whatever the strategy reports dirty, and then runs
  the **consistency oracle**: every procedure's post-recovery answer
  must be bit-identical to a fresh recompute against the current base
  relations.

All repair work is charged under ``fault.recovery`` spans and oracle
work under ``fault.oracle``, so an attached
:class:`repro.obs.CostAttribution` still sums phases exactly to the
clock total.

Crash model: chaos runs use buffer capacity 0 (every write immediately
durable), so a crash loses exactly the WAL tail and in-memory validity
state. There is no base-relation undo: an update interrupted mid-flight
leaves its applied tuples in place, and recovery is redo-style —
:meth:`RecoverySupervisor.handle_update_failure` conservatively
recompute-repairs *every* procedure so caches agree with whatever state
the base relations reached. The oracle therefore checks consistency
with base truth, not transactional atomicity.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from typing import TYPE_CHECKING

from repro.core.manager import AccessResult, ProcedureManager, UpdateResult
from repro.faults.errors import CrashSignal, FaultError, PageCorruptionError
from repro.query.executor import execute_plan
from repro.query.optimizer import Optimizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import ProcedureStrategy
    from repro.faults.injector import FaultInjector
    from repro.query.plan import Plan
    from repro.storage.page import RID
    from repro.storage.tuples import Row

RECOVERY_PHASE = "fault.recovery"
ORACLE_PHASE = "fault.oracle"


class RecoverySupervisor:
    """Degradation and crash-restart policy for one strategy instance."""

    def __init__(
        self, strategy: "ProcedureStrategy", injector: "FaultInjector"
    ) -> None:
        self.strategy = strategy
        self.catalog = strategy.catalog
        self.clock = strategy.clock
        self.injector = injector
        self._optimizer = Optimizer(self.catalog)
        self._full_plans: dict[str, "Plan"] = {}
        self.degraded_accesses = 0
        self.repairs = 0
        self.ar_fallbacks = 0
        self.crash_restarts = 0
        self.update_aborts = 0
        self.oracle_checks = 0
        self.oracle_failures = 0
        self.oracle_mismatches: list[str] = []

    # -- plumbing ---------------------------------------------------------

    def _span(self, phase: str):
        tracer = self.clock.tracer
        return nullcontext() if tracer is None else tracer.span(phase)

    def _event(self, name: str) -> None:
        tracer = self.clock.tracer
        if tracer is not None:
            tracer.event(name)

    def _full_plan(self, name: str) -> "Plan":
        """A projection-free plan for ``name`` — its output rows are the
        full combined rows every strategy's repair hook expects."""
        plan = self._full_plans.get(name)
        if plan is None:
            query = self.strategy.procedures[name].query
            plan = self._optimizer.compile_normalized(
                dataclasses.replace(query, projection=None)
            )
            self._full_plans[name] = plan
        return plan

    def recompute(self, name: str) -> list["Row"]:
        """Fresh unprojected value from the base relations (charged)."""
        result = execute_plan(
            self._full_plan(name), self.catalog, self.clock, procedure=name
        )
        return result.rows

    # -- operation-boundary crash points ----------------------------------

    def crash_point(self, point: str) -> None:
        """Fire the per-operation crash point; a hit restarts inline (the
        crash lands on the boundary, before the operation begins)."""
        if self.injector.check_crash(point):
            self.crash_restart(point)

    # -- degradation ladder -----------------------------------------------

    def degraded_access(self, name: str, exc: FaultError) -> list["Row"]:
        """The cached read (UC rung) failed with ``exc``; walk the ladder
        and return the projected rows the access should serve."""
        self.degraded_accesses += 1
        self._event("fault.access.degraded")
        if isinstance(exc, CrashSignal):
            self.handle_crash(exc)
        try:
            # CI rung: recompute from base, repair the cache, serve.
            with self._span(RECOVERY_PHASE):
                rows = self.recompute(name)
                self.strategy.repair_procedure(name, rows)
            self.repairs += 1
        except CrashSignal as inner:
            # A crash mid-repair: restart, then repair on the quiesced
            # system (recovery already verified consistency).
            self.handle_crash(inner)
            with self.injector.suspended(), self._span(RECOVERY_PHASE):
                rows = self.recompute(name)
                self.strategy.repair_procedure(name, rows)
            self.repairs += 1
        except FaultError:
            # AR rung: the repair itself faults persistently. Serve the
            # access Always-Recompute style with injection quiesced and
            # leave the cache as-is for a later repair.
            self.ar_fallbacks += 1
            self._event("fault.access.ar_fallback")
            with self.injector.suspended(), self._span(RECOVERY_PHASE):
                rows = self.recompute(name)
        procedure = self.strategy.procedures[name]
        return procedure.project_rows(rows, self.catalog)

    # -- crash-restart ----------------------------------------------------

    def handle_crash(self, exc: CrashSignal) -> None:
        """Policy hook for a crash surfacing on the access path. The base
        supervisor restarts the whole engine; the shard-aware subclass
        narrows a :class:`~repro.faults.errors.ShardCrashSignal` to its
        one fault domain."""
        self.crash_restart(exc.point)

    def crash_restart(self, reason: str) -> None:
        """Fail-stop plus instantaneous restart at an operation boundary:
        volatile state is lost, the strategy recovers from WAL + base
        relations, dirty values are recompute-repaired, and the oracle
        verifies every procedure."""
        self.crash_restarts += 1
        self._event("fault.crash_restart")
        with self.injector.suspended():
            with self._span(RECOVERY_PHASE):
                dirty = self.strategy.recover_after_crash()
                for name in dirty:
                    self.strategy.repair_procedure(name, self.recompute(name))
                    self.repairs += 1
            self.verify_consistency()

    def handle_update_failure(self, exc: FaultError) -> None:
        """An update transaction died mid-flight (crash, corruption, or a
        persistent fault during base/maintenance work). With no undo, the
        applied base changes stand; recovery is redo-style: restart, then
        conservatively recompute-repair *every* procedure so caches agree
        with whatever the base relations now contain."""
        self.update_aborts += 1
        self.crash_restarts += 1
        self._event("fault.update.aborted")
        with self.injector.suspended():
            with self._span(RECOVERY_PHASE):
                self.strategy.recover_after_crash()
                for name in sorted(self.strategy.procedures):
                    self.strategy.repair_procedure(name, self.recompute(name))
                    self.repairs += 1
            self.verify_consistency()

    # -- the oracle -------------------------------------------------------

    def verify_consistency(self) -> bool:
        """Every procedure's answer must be bit-identical (as a sorted
        multiset) to a fresh recompute against the current base relations.
        Runs with injection suspended; charged under ``fault.oracle``."""
        self.oracle_checks += 1
        ok = True
        with self.injector.suspended(), self._span(ORACLE_PHASE):
            for name in sorted(self.strategy.procedures):
                procedure = self.strategy.procedures[name]
                expected = sorted(
                    procedure.project_rows(self.recompute(name), self.catalog)
                )
                try:
                    actual = sorted(self.strategy.access(name))
                except PageCorruptionError:
                    # A latent torn page surfaced during verification:
                    # repair it (under fault.recovery), then re-read.
                    with self._span(RECOVERY_PHASE):
                        self.strategy.repair_procedure(
                            name, self.recompute(name)
                        )
                    self.repairs += 1
                    actual = sorted(self.strategy.access(name))
                if actual != expected:
                    ok = False
                    self.oracle_failures += 1
                    self.oracle_mismatches.append(name)
                    self._event("fault.oracle.mismatch")
        return ok


class SupervisedManager(ProcedureManager):
    """A :class:`ProcedureManager` that survives injected faults.

    Accesses that fault walk the supervisor's degradation ladder and
    still return correct rows; updates that fault mid-flight abort into
    redo-style recovery; operation boundaries pass the ``op.access`` /
    ``op.update`` crash points. With no faults firing, behaviour and
    charges are identical to the plain manager."""

    def __init__(
        self, strategy: "ProcedureStrategy", supervisor: RecoverySupervisor
    ) -> None:
        super().__init__(strategy)
        self.supervisor = supervisor

    def access(self, name: str) -> AccessResult:
        sup = self.supervisor
        sup.crash_point("op.access")
        before = self.clock.snapshot()
        try:
            rows = self.strategy.access(name)
        except FaultError as exc:
            rows = sup.degraded_access(name, exc)
        cost = self.clock.elapsed_since(before)
        self.access_cost_ms += cost
        self.num_accesses += 1
        return AccessResult(name=name, rows=rows, cost_ms=cost)

    def update(
        self,
        relation_name: str,
        changes: list[tuple["RID", "Row"]],
        cluster_field: str | None = None,
    ) -> UpdateResult:
        sup = self.supervisor
        sup.crash_point("op.update")
        try:
            return super().update(relation_name, changes, cluster_field)
        except FaultError as exc:
            sup.handle_update_failure(exc)
            # The aborted transaction consumed its slot in the stream; its
            # partial charges stay on the clock (attributed to their
            # phases) but not in the per-bucket counters.
            self.num_updates += 1
            return UpdateResult(
                relation=relation_name,
                tuples_modified=0,
                base_cost_ms=0.0,
                maintenance_cost_ms=0.0,
            )
