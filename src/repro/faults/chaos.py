"""Seeded chaos campaigns against the five strategies.

Backs the ``repro-procs chaos`` CLI subcommand: build the synthetic
database, wire a :class:`~repro.faults.injector.FaultInjector` into the
storage and WAL layers, run a multi-client workload under a
:class:`~repro.faults.supervisor.RecoverySupervisor`, and report what
was injected, how it was survived, and whether the crash-restart
consistency oracle held.

Wiring order matters and mirrors the concurrent runner: the database is
built and the caches warmed *before* the injector arms, so fault
campaigns perturb the measured window only; the final oracle pass runs
inside the observation window, so the per-phase attribution (including
``fault.recovery`` and ``fault.oracle``) still sums exactly to the
clock total.

Sharded chaos (``shards=``): the strategy runs behind the
:class:`~repro.shard.ShardedStrategy` facade. At ``shards=1`` the
wiring is byte-for-byte the plain path — one global injector, the base
:class:`RecoverySupervisor` — so output is bit-identical to an
unsharded chaos run (the CI differential). Above one shard every shard
becomes its own fault domain (:mod:`repro.shard.faults`): per-shard
injectors over ``derive_seed``-split streams, a
:class:`~repro.shard.faults.ShardedRecoverySupervisor` that recovers
single shards via replica failover or WAL rebuild, and the β-tier
retry queue for deliveries aimed at a mid-recovery shard.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.concurrent.engine import _Engine, collect_footprints
from repro.concurrent.session import ClientSession, session_seed, split_operations
from repro.faults.errors import CrashSignal, FaultError
from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.supervisor import RecoverySupervisor, SupervisedManager
from repro.model.params import ModelParams
from repro.obs import SCHEMA_VERSION, CostAttribution
from repro.sim import MetricSet
from repro.workload.database import SyntheticDatabase, build_database
from repro.workload.generator import generate_operations
from repro.workload.procedures import build_procedures
from repro.workload.runner import make_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import TelemetryBus

#: The five strategies a chaos campaign covers (same set as the
#: concurrency comparison).
CHAOS_STRATEGIES: tuple[str, ...] = (
    "always_recompute",
    "cache_invalidate",
    "update_cache_avm",
    "update_cache_rvm",
    "hybrid",
)


def database_digest(db: SyntheticDatabase) -> str:
    """CRC32 fingerprint of every occupied slot of every file — base
    relations, caches, WAL-less metadata alike. Bit-identical database
    states (the seed-determinism contract) produce identical digests;
    reads nothing through the charged path, so the clock is untouched."""
    crc = 0
    disk = db.disk
    for name in sorted(disk.file_names()):
        for page_no in range(disk.num_pages(name)):
            page = disk.peek_page(name, page_no)
            for slot_no, row in page.rows():
                crc = zlib.crc32(
                    repr((name, page_no, slot_no, row)).encode(), crc
                )
    return f"{crc:08x}"


def _write_ahead_logs(strategy) -> list:
    """Every WAL reachable from ``strategy`` — Cache and Invalidate with
    the logged scheme, possibly nested inside hybrid, and (through a
    sharded facade) every shard's primary *and* replica engines, so
    ``wal_records_lost`` sums the whole population instead of one
    engine's share."""
    wals = []
    stack = [strategy]
    while stack:
        current = stack.pop()
        shards = getattr(current, "shards", None)
        if shards is not None:
            for shard in shards:
                stack.append(shard.strategy)
                if shard.replica is not None:
                    stack.append(shard.replica)
        subs = getattr(current, "_subs", None)
        if subs is not None:
            stack.extend(subs.values())
        scheme = getattr(current, "scheme", None)
        wal = getattr(scheme, "wal", None)
        if wal is not None:
            wals.append(wal)
    return wals


@dataclass
class ChaosRunResult:
    """Outcome of one fault-injected run: what fired, what it cost to
    survive, and whether consistency held."""

    strategy: str
    mpl: int
    model: int
    seed: int
    plan_seed: int
    num_accesses: int
    num_updates: int
    #: Operations dropped because their *prepare* step faulted.
    ops_failed: int
    faults_injected: int
    fault_counts: dict[str, dict[str, int]]
    retries: int
    backoff_ms: float
    torn_pages: int
    corruptions_detected: int
    crashes: int
    degraded_accesses: int
    repairs: int
    ar_fallbacks: int
    crash_restarts: int
    update_aborts: int
    oracle_checks: int
    oracle_failures: int
    oracle_ok: bool
    clock_total_ms: float
    #: Clock total at the end of the workload itself, before the final
    #: oracle pass (comparable with a plain run's ``clock_total_ms``).
    engine_ms: float
    #: Charged to the ``fault.recovery`` phase (retry backoff + repairs).
    recovery_ms: float
    #: Charged to the ``fault.oracle`` phase. Inner strategy spans (e.g.
    #: ``cache.read``) keep their own phase even inside the oracle, so
    #: this is the oracle's *direct* charge, not its whole window.
    oracle_ms: float
    phase_costs: dict[str, float] = field(default_factory=dict)
    database_digest: str = ""
    wal_records_lost: int = 0
    #: Shard count behind the facade (``None`` = plain unsharded run).
    shards: int | None = None
    #: Replicas per shard (0 or 1; multi-shard runs only).
    replicas: int = 0
    #: Single-shard fail-stops (the whole-engine ``crashes`` counter
    #: above includes these; the rest of the engine kept serving).
    shard_crashes: int = 0
    #: Replica promotions (failover path) / WAL rebuilds (no replica).
    promotions: int = 0
    wal_rebuilds: int = 0
    shard_recoveries: int = 0
    #: β-tier deliveries parked for a down shard, and how many drained
    #: at recovery — equal once every shard is back up (the no-drop
    #: property).
    deliveries_queued: int = 0
    deliveries_drained: int = 0
    delivery_retries: int = 0
    #: Charged to ``shard.failover`` / ``fault.replica`` phases.
    failover_ms: float = 0.0
    replica_ms: float = 0.0
    #: Per-operation latency/service stats from the engine (manifest
    #: histograms are built from these; excluded from the JSON export).
    metrics: MetricSet = field(default_factory=MetricSet)

    @property
    def attribution_consistent(self) -> bool:
        """Phase totals must sum exactly to the clock total — recovery is
        a phase, not a leak."""
        return math.isclose(
            sum(self.phase_costs.values()),
            self.clock_total_ms,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    def to_dict(self) -> dict:
        """JSON-ready export (what ``repro-procs chaos --json`` emits)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "strategy": self.strategy,
            "mpl": self.mpl,
            "model": self.model,
            "seed": self.seed,
            "plan_seed": self.plan_seed,
            "num_accesses": self.num_accesses,
            "num_updates": self.num_updates,
            "ops_failed": self.ops_failed,
            "faults_injected": self.faults_injected,
            "fault_counts": self.fault_counts,
            "retries": self.retries,
            "backoff_ms": self.backoff_ms,
            "torn_pages": self.torn_pages,
            "corruptions_detected": self.corruptions_detected,
            "crashes": self.crashes,
            "degraded_accesses": self.degraded_accesses,
            "repairs": self.repairs,
            "ar_fallbacks": self.ar_fallbacks,
            "crash_restarts": self.crash_restarts,
            "update_aborts": self.update_aborts,
            "oracle_checks": self.oracle_checks,
            "oracle_failures": self.oracle_failures,
            "oracle_ok": self.oracle_ok,
            "clock_total_ms": self.clock_total_ms,
            "engine_ms": self.engine_ms,
            "recovery_ms": self.recovery_ms,
            "oracle_ms": self.oracle_ms,
            "phases": self.phase_costs,
            "attribution_consistent": self.attribution_consistent,
            "database_digest": self.database_digest,
            "wal_records_lost": self.wal_records_lost,
            "shards": self.shards,
            "replicas": self.replicas,
            "shard_crashes": self.shard_crashes,
            "promotions": self.promotions,
            "wal_rebuilds": self.wal_rebuilds,
            "shard_recoveries": self.shard_recoveries,
            "deliveries_queued": self.deliveries_queued,
            "deliveries_drained": self.deliveries_drained,
            "delivery_retries": self.delivery_retries,
            "failover_ms": self.failover_ms,
            "replica_ms": self.replica_ms,
        }


def run_chaos(
    params: ModelParams,
    strategy_name: str,
    plan: FaultPlan | None = None,
    mpl: int = 1,
    model: int = 1,
    num_operations: int = 120,
    seed: int = 0,
    invalidation_scheme: str | None = "wal",
    observation: CostAttribution | None = None,
    shards: int | None = None,
    replicas: int = 0,
    degrade: bool = False,
    telemetry: "TelemetryBus | None" = None,
) -> ChaosRunResult:
    """One fault-injected multi-client run of ``strategy_name``.

    ``plan`` defaults to :meth:`FaultPlan.seeded` with the workload seed.
    ``invalidation_scheme`` applies to Cache and Invalidate only (chaos
    defaults it to ``"wal"`` so the WAL fault points participate).
    ``observation`` substitutes a pre-built attribution (a flight
    recorder's unbounded one for trace export); by default each run
    builds its own.

    ``shards`` runs the strategy behind the sharded facade: ``None``
    keeps the plain engine, ``1`` is bit-identical to it (plain injector
    and supervisor — the differential contract), and above that every
    shard is an independent fault domain with its own derived-seed
    injector and a shard-aware supervisor. ``replicas=1`` maintains one
    hot standby per shard (promoted on shard crash); ``degrade=True``
    attaches the per-shard overload ladder. Both require ``shards >= 2``.

    The buffer is pinned at capacity 0 — the crash model requires every
    completed page write to be durable, so a crash loses exactly the WAL
    tail and in-memory validity state.
    """
    if mpl < 1:
        raise ValueError("multiprogramming level mpl must be >= 1")
    if shards is not None and shards < 1:
        raise ValueError("shards must be >= 1 (or None for unsharded)")
    if replicas and (shards is None or shards < 2):
        raise ValueError("replicas require shards >= 2")
    if degrade and (shards is None or shards < 2):
        raise ValueError("degrade requires shards >= 2")
    if plan is None:
        plan = FaultPlan.seeded(seed)
    db = build_database(params, seed=seed, buffer_capacity=0)
    pop = build_procedures(db, params, model=model, seed=seed)
    scheme = (
        invalidation_scheme if strategy_name == "cache_invalidate" else None
    )
    if shards is None:
        strategy = make_strategy(
            strategy_name, db, params, invalidation_scheme=scheme
        )
    else:
        from repro.shard import make_sharded_strategy

        strategy = make_sharded_strategy(
            strategy_name,
            db,
            params,
            num_shards=shards,
            invalidation_scheme=scheme,
            seed=seed,
            replicas=replicas,
        )
    sharded_domains = shards is not None and shards > 1
    if sharded_domains:
        from repro.shard.degrade import OverloadController
        from repro.shard.faults import (
            ShardedRecoverySupervisor,
            wire_fault_domains,
        )

        # Per-shard fault domains (inert until armed) + the global
        # injector for the legacy unprefixed points.
        injector = wire_fault_domains(strategy, plan)
        supervisor = ShardedRecoverySupervisor(strategy, injector)
        if degrade:
            strategy.controller = OverloadController(shards)
    else:
        injector = FaultInjector(plan)
        supervisor = RecoverySupervisor(strategy, injector)
    manager = SupervisedManager(strategy, supervisor)
    for name, expr in pop.definitions:
        manager.define_procedure(name, expr)

    # Warm every cache fault-free, then measure from a clean clock.
    for name in pop.names:
        manager.access(name)
    manager.reset_counters()
    footprints = collect_footprints(db, manager)
    db.clock.reset()

    # Wire the injector into the shared storage and WAL layers, then arm
    # every domain. Per-shard disks/WALs were wired above (inert until
    # now); the shared base-relation disk always takes the global
    # injector, so legacy points keep their pre-sharding meaning.
    wals = _write_ahead_logs(strategy)
    if sharded_domains:
        db.disk.injector = injector.global_injector
    else:
        db.disk.injector = injector
        for wal in wals:
            wal.injector = injector
    injector.arm()

    sessions = []
    for i, ops_count in enumerate(split_operations(num_operations, mpl)):
        s_seed = session_seed(seed, i)
        operations = list(
            generate_operations(params, pop.names, ops_count, seed=s_seed)
        )
        sessions.append(
            ClientSession(
                session_id=i,
                operations=operations,
                rng=random.Random(s_seed + 3),
            )
        )

    def handle_prepare_fault(exc: BaseException) -> bool:
        """Prepare-time faults (base reads before any lock is held): a
        crash restarts the system; any other fault just costs the retries
        already charged. Either way the operation is dropped."""
        if isinstance(exc, CrashSignal):
            supervisor.handle_crash(exc)
            return True
        return isinstance(exc, FaultError)

    if observation is None:
        observation = CostAttribution()
    if telemetry is not None:
        telemetry.configure(
            num_shards=shards or 1,
            shard_resolver=getattr(strategy, "shard_of", None),
        )
        observation.telemetry = telemetry
        controller = getattr(strategy, "controller", None)
        if controller is not None:
            controller.telemetry = telemetry
    measure_start = db.clock.snapshot()
    observation.attach(db.clock)
    engine = _Engine(db, manager, sessions, footprints)
    engine.fault_handler = handle_prepare_fault
    try:
        engine.run()
        engine_ms = db.clock.elapsed_since(measure_start)
        # Final oracle pass inside the observation window, so its charges
        # are attributed like everything else.
        oracle_ok = supervisor.verify_consistency()
    finally:
        observation.detach()
    clock_total_ms = db.clock.elapsed_since(measure_start)
    if telemetry is not None:
        telemetry.finalize(db.clock.elapsed_ms)

    failover = (
        strategy.failover_stats()
        if hasattr(strategy, "failover_stats")
        else {}
    )
    if hasattr(strategy, "shards"):
        # Post-run shard state for the manifest snapshot: the sizing
        # gauges plus each shard's final degradation rung (uncharged —
        # the measured window was captured above).
        from repro.shard.sizing import measure_sizing, register_metrics

        register_metrics(
            measure_sizing(db, strategy, seed=seed), observation.registry
        )
        if strategy.controller is not None:
            for shard_id, rung in enumerate(strategy.controller.rungs()):
                observation.registry.gauge(
                    f"shard.{shard_id}.degrade.rung"
                ).set(float(rung))
    phase_costs = observation.phase_costs()
    return ChaosRunResult(
        strategy=strategy_name,
        mpl=mpl,
        model=model,
        seed=seed,
        plan_seed=plan.seed,
        num_accesses=manager.num_accesses,
        num_updates=manager.num_updates,
        ops_failed=engine.ops_failed,
        faults_injected=injector.total_injected,
        fault_counts=injector.fault_counts(),
        retries=injector.retries,
        backoff_ms=injector.backoff_ms_total,
        torn_pages=injector.torn_pages,
        corruptions_detected=injector.corruptions_detected,
        crashes=injector.crashes,
        degraded_accesses=supervisor.degraded_accesses,
        repairs=supervisor.repairs,
        ar_fallbacks=supervisor.ar_fallbacks,
        crash_restarts=supervisor.crash_restarts,
        update_aborts=supervisor.update_aborts,
        oracle_checks=supervisor.oracle_checks,
        oracle_failures=supervisor.oracle_failures,
        oracle_ok=oracle_ok and supervisor.oracle_failures == 0,
        clock_total_ms=clock_total_ms,
        engine_ms=engine_ms,
        recovery_ms=phase_costs.get("fault.recovery", 0.0),
        oracle_ms=phase_costs.get("fault.oracle", 0.0),
        phase_costs=phase_costs,
        database_digest=database_digest(db),
        wal_records_lost=sum(wal.records_lost for wal in wals),
        shards=shards,
        replicas=replicas,
        shard_crashes=int(failover.get("shard_crashes", 0)),
        promotions=int(failover.get("promotions", 0)),
        wal_rebuilds=getattr(supervisor, "wal_rebuilds", 0),
        shard_recoveries=getattr(supervisor, "shard_recoveries", 0),
        deliveries_queued=int(failover.get("deliveries_queued", 0)),
        deliveries_drained=int(failover.get("deliveries_drained", 0)),
        delivery_retries=int(failover.get("delivery_retries", 0)),
        failover_ms=phase_costs.get("shard.failover", 0.0),
        replica_ms=phase_costs.get("fault.replica", 0.0),
        metrics=engine.metrics,
    )


def chaos_sweep(
    params: ModelParams,
    strategies: Sequence[str] = CHAOS_STRATEGIES,
    plan: FaultPlan | None = None,
    mpl: int = 1,
    model: int = 1,
    num_operations: int = 120,
    seed: int = 0,
    observation_factory=None,
    shards: int | None = None,
    replicas: int = 0,
    degrade: bool = False,
) -> list[ChaosRunResult]:
    """Run the same fault campaign against each strategy. Every run gets
    its own injector from the same plan, so campaigns are comparable
    (same seed, same rates) without sharing RNG state across runs.
    ``observation_factory`` builds one attribution per run (manifest and
    trace-export paths). ``shards``/``replicas``/``degrade`` pass
    through to :func:`run_chaos` unchanged."""
    return [
        run_chaos(
            params,
            strategy,
            plan=plan,
            mpl=mpl,
            model=model,
            num_operations=num_operations,
            seed=seed,
            observation=(
                observation_factory()
                if observation_factory is not None
                else None
            ),
            shards=shards,
            replicas=replicas,
            degrade=degrade,
        )
        for strategy in strategies
    ]


def render_chaos_table(results: Iterable[ChaosRunResult]) -> str:
    """One aligned text table: what fired, what it cost, did the oracle
    hold."""
    header = (
        f"{'strategy':18s} {'mpl':>4s} {'faults':>6s} {'retry':>5s} "
        f"{'torn':>4s} {'crash':>5s} {'degr':>4s} {'repair':>6s} "
        f"{'ar_fb':>5s} {'restart':>7s} {'recov ms':>9s} {'oracle':>6s}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.strategy:18s} {r.mpl:4d} {r.faults_injected:6d} "
            f"{r.retries:5d} {r.torn_pages:4d} {r.crashes:5d} "
            f"{r.degraded_accesses:4d} {r.repairs:6d} {r.ar_fallbacks:5d} "
            f"{r.crash_restarts:7d} {r.recovery_ms:9.1f} "
            f"{'OK' if r.oracle_ok else 'FAIL':>6s}"
        )
    return "\n".join(lines)


def chaos_to_dict(results: Iterable[ChaosRunResult]) -> dict:
    """JSON-ready export of a campaign (the CI workflow artifact)."""
    results = list(results)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "chaos_report",
        "strategies": sorted({r.strategy for r in results}),
        "mpls": sorted({r.mpl for r in results}),
        "oracle_ok": all(r.oracle_ok for r in results),
        "runs": [r.to_dict() for r in results],
    }
