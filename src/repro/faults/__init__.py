"""Deterministic fault injection, recovery supervision, and chaos runs.

This package namespace exports only the import-light pieces (errors and
the injector) so the storage layer can depend on them without cycles.
The heavier layers live in their own modules:

- :mod:`repro.faults.supervisor` — :class:`RecoverySupervisor` and
  :class:`SupervisedManager` (retry/degradation/crash-restart policy);
- :mod:`repro.faults.chaos` — seeded chaos runs with the consistency
  oracle, backing ``repro-procs chaos``.
"""

from repro.faults.errors import (
    CrashSignal,
    FaultError,
    PageCorruptionError,
    PersistentIOError,
    ShardCrashSignal,
    TransientIOError,
)
from repro.faults.injector import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    ScheduledFault,
    ShardFaultInjector,
)

__all__ = [
    "CrashSignal",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "PageCorruptionError",
    "PersistentIOError",
    "ScheduledFault",
    "ShardCrashSignal",
    "ShardFaultInjector",
    "TransientIOError",
]
