"""Fault-condition exceptions.

Deliberately dependency-free: the storage and recovery layers raise and
catch these without importing the rest of :mod:`repro.faults`, so the
fault subsystem never creates an import cycle with the layers it wraps.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for every injected-fault condition."""


class TransientIOError(FaultError):
    """A single transient I/O failure.

    The injector retries these internally with backoff, so this type
    rarely escapes; it exists so schedules and tests can name the
    condition explicitly.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"transient I/O fault at {point}")
        self.point = point


class PersistentIOError(FaultError):
    """A fault that survived the bounded retry budget."""

    def __init__(self, point: str, attempts: int) -> None:
        super().__init__(
            f"I/O fault at {point} persisted through {attempts} attempts"
        )
        self.point = point
        self.attempts = attempts


class PageCorruptionError(FaultError):
    """A page failed its checksum on read (torn write detected)."""

    def __init__(self, file_name: str, page_no: int) -> None:
        super().__init__(
            f"checksum mismatch reading page {page_no} of {file_name!r}"
        )
        self.file_name = file_name
        self.page_no = page_no


class CrashSignal(FaultError):
    """A full simulated crash: volatile state is lost; the supervisor
    must run crash-restart recovery before serving anything else."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point


class ShardCrashSignal(CrashSignal):
    """One shard crashed: its i-locks/buffer/WAL/Rete are lost while the
    remaining shards keep serving. A shard-aware supervisor recovers (or
    fails over to a replica of) just that fault domain."""

    def __init__(self, point: str, shard_id: int) -> None:
        FaultError.__init__(
            self, f"simulated crash of shard {shard_id} at {point}"
        )
        self.point = point
        self.shard_id = shard_id
