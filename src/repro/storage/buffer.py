"""An LRU buffer pool over the simulated disk.

The paper's cost model assumes *no* buffering: every page touched costs one
disk I/O. The pool therefore defaults to ``capacity=0`` (pure pass-through).
A positive capacity enables classic LRU caching with deferred write-back,
which the extension benchmarks use to show how the paper's 1987 conclusions
shift once pages stay resident in memory.

When a tracer is attached to the clock (``repro.obs``), every fetch also
emits a ``cache.hit`` / ``cache.miss`` event; unobserved runs skip the
emission entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.storage.disk import DiskManager
from repro.storage.page import Page

FrameKey = tuple[str, int]


class BufferPool:
    """Page access with optional LRU caching and write-back.

    Args:
        disk: the underlying disk manager (charges the clock).
        capacity: number of page frames. ``0`` disables caching entirely:
            every :meth:`fetch` charges a read and every :meth:`mark_dirty`
            charges a write, which is exactly the paper's cost accounting.
    """

    def __init__(self, disk: DiskManager, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[FrameKey, Page] = OrderedDict()
        self._dirty: set[FrameKey] = set()
        self.hits = 0
        self.misses = 0

    def fetch(self, file_name: str, page_no: int) -> Page:
        """Return the requested page, charging a read only on a miss."""
        key = (file_name, page_no)
        tracer = self.disk.clock.tracer
        if self.capacity == 0:
            self.misses += 1
            if tracer is not None:
                tracer.event("cache.miss")
            return self.disk.read_page(file_name, page_no)
        if key in self._frames:
            self.hits += 1
            if tracer is not None:
                tracer.event("cache.hit")
            self._frames.move_to_end(key)
            return self._frames[key]
        self.misses += 1
        if tracer is not None:
            tracer.event("cache.miss")
        page = self.disk.read_page(file_name, page_no)
        self._admit(key, page)
        return page

    def fetch_many(
        self,
        file_name: str,
        page_nos: Iterable[int],
        mark_dirty: bool = False,
    ) -> int:
        """Touch a set of pages in sorted page order, optionally dirtying
        each — the batched flush primitive under the materialized stores:
        one deterministic pass per distinct page, however many delta rows
        landed on it. Returns the number of distinct pages touched."""
        distinct = sorted(set(page_nos))
        for page_no in distinct:
            self.fetch(file_name, page_no)
            if mark_dirty:
                self.mark_dirty(file_name, page_no)
        return len(distinct)

    def mark_dirty(self, file_name: str, page_no: int) -> None:
        """Record that a fetched page was modified.

        Pass-through mode charges the write immediately; cached mode defers
        it until eviction or :meth:`flush_all`.
        """
        key = (file_name, page_no)
        if self.capacity == 0:
            self.disk.write_page(file_name, page_no)
            return
        if key not in self._frames:
            # The page was modified without being resident (e.g. a fresh
            # allocation) — account for the write immediately.
            self.disk.write_page(file_name, page_no)
            return
        self._dirty.add(key)

    def _admit(self, key: FrameKey, page: Page) -> None:
        self._frames[key] = page
        self._frames.move_to_end(key)
        while len(self._frames) > self.capacity:
            victim_key, _victim = self._frames.popitem(last=False)
            if victim_key in self._dirty:
                self._dirty.discard(victim_key)
                self.disk.write_page(victim_key[0], victim_key[1])

    def flush_all(self) -> int:
        """Write back every dirty frame; return the number written."""
        written = 0
        for key in sorted(self._dirty):
            self.disk.write_page(key[0], key[1])
            written += 1
        self._dirty.clear()
        return written

    def invalidate_file(self, file_name: str) -> None:
        """Drop (without write-back) all frames of ``file_name`` — used when
        a file is truncated and its cached pages are meaningless."""
        stale = [key for key in self._frames if key[0] == file_name]
        for key in stale:
            del self._frames[key]
            self._dirty.discard(key)

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from the pool (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
