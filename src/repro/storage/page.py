"""Slotted pages and record identifiers."""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.storage.tuples import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.columnar import ColumnBatch
    from repro.storage.tuples import Schema


@dataclass(frozen=True, order=True)
class RID:
    """A record identifier: (page number, slot number) within a file."""

    page_no: int
    slot_no: int


class PageFullError(RuntimeError):
    """Raised when inserting into a page with no free slot."""


class Page:
    """A fixed-capacity slotted page of rows.

    Capacity is ``block_bytes // tuple_bytes`` — the paper's blocking factor
    (40 tuples per 4 000-byte block at the default 100-byte tuples). Deleted
    slots become holes that later inserts may reuse, so update-in-place keeps
    RIDs stable, as the paper's in-place update model requires.

    Integrity: each page carries a lazy stored checksum. ``None`` means the
    stored checksum is in sync with the contents (the common case — every
    legitimate mutation resets it), so :meth:`checksum_ok` costs nothing
    until fault injection tears a page by recording a *wrong* stored
    checksum via :meth:`mark_torn`. The disk verifies only when a
    :class:`~repro.faults.injector.FaultInjector` is installed.
    """

    __slots__ = (
        "page_no",
        "capacity",
        "_slots",
        "_live",
        "_stored_checksum",
        "_column_cache",
    )

    def __init__(self, page_no: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        self.page_no = page_no
        self.capacity = capacity
        self._slots: list[Optional[Row]] = [None] * capacity
        self._live = 0
        self._stored_checksum: Optional[int] = None
        # (schema, slot_nos, ColumnBatch) — rebuilt lazily after mutation.
        self._column_cache: Optional[tuple] = None

    def __len__(self) -> int:
        return self._live

    @property
    def is_full(self) -> bool:
        return self._live >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self._live == 0

    def insert(self, row: Row) -> int:
        """Place ``row`` in the first free slot; return the slot number."""
        if self.is_full:
            raise PageFullError(f"page {self.page_no} is full")
        for slot_no, existing in enumerate(self._slots):
            if existing is None:
                self._slots[slot_no] = row
                self._live += 1
                self._stored_checksum = None
                self._column_cache = None
                return slot_no
        raise PageFullError(f"page {self.page_no} has inconsistent occupancy")

    def read(self, slot_no: int) -> Row:
        """Return the row in ``slot_no``; raises ``KeyError`` on empty slots."""
        row = self._slots[slot_no]
        if row is None:
            raise KeyError(f"slot {slot_no} of page {self.page_no} is empty")
        return row

    def overwrite(self, slot_no: int, row: Row) -> None:
        """Replace the row in an occupied slot (update-in-place)."""
        if self._slots[slot_no] is None:
            raise KeyError(f"slot {slot_no} of page {self.page_no} is empty")
        self._slots[slot_no] = row
        self._stored_checksum = None
        self._column_cache = None

    def delete(self, slot_no: int) -> Row:
        """Remove and return the row in ``slot_no``."""
        row = self.read(slot_no)
        self._slots[slot_no] = None
        self._live -= 1
        self._stored_checksum = None
        self._column_cache = None
        return row

    # -- integrity --------------------------------------------------------

    def compute_checksum(self) -> int:
        """CRC32 over the page image. ``repr`` bytes rather than ``hash()``
        because string hashing is salted per process; CRC is stable across
        runs, which seed-determinism tests rely on."""
        return zlib.crc32(repr(self._slots).encode())

    def checksum_ok(self) -> bool:
        """Whether the stored checksum (if any) matches the contents."""
        stored = self._stored_checksum
        return stored is None or stored == self.compute_checksum()

    def mark_torn(self) -> None:
        """Corrupt the page in place (a torn write): record a stored
        checksum that cannot match the contents. Any subsequent legitimate
        mutation rewrites the page and heals it."""
        self._stored_checksum = self.compute_checksum() ^ 0xA5A5A5A5

    @property
    def is_torn(self) -> bool:
        return not self.checksum_ok()

    def rows(self) -> Iterator[tuple[int, Row]]:
        """Yield ``(slot_no, row)`` for every occupied slot, in slot order."""
        for slot_no, row in enumerate(self._slots):
            if row is not None:
                yield slot_no, row

    def column_batch(
        self, schema: "Schema"
    ) -> tuple[list[int], "ColumnBatch"]:
        """This page's live rows as ``(slot_nos, ColumnBatch)``, slot order.

        Cached until the next mutation; pages are fetched once per scan but
        scanned by many plans, so the transpose cost amortises. The cache is
        keyed by schema identity — each heap/store passes its own schema
        object, so a mismatch only happens across files, which never share
        pages.
        """
        cache = self._column_cache
        if cache is not None and cache[0] is schema:
            return cache[1], cache[2]
        from repro.storage.columnar import ColumnBatch

        slot_nos: list[int] = []
        live_rows: list[Row] = []
        for slot_no, row in enumerate(self._slots):
            if row is not None:
                slot_nos.append(slot_no)
                live_rows.append(row)
        batch = ColumnBatch(schema, live_rows)
        self._column_cache = (schema, slot_nos, batch)
        return slot_nos, batch

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Page(no={self.page_no}, live={self._live}/{self.capacity})"
