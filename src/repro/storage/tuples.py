"""Schemas and rows.

A :class:`Schema` describes the fields of a relation and the (fixed) byte
width of its tuples — the paper's parameter ``S``. Rows are stored as plain
Python tuples for speed; the schema supplies name-to-position resolution so
predicates and join specs can be compiled down to integer offsets once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

Row = tuple
"""A database tuple: a plain tuple of field values, positionally typed."""


class FieldKind(enum.Enum):
    """Supported field types (what the paper's procedures require)."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    def python_type(self) -> type:
        """The Python type that stores this kind."""
        return {"int": int, "float": float, "str": str}[self.value]


@dataclass(frozen=True)
class Field:
    """One column of a relation."""

    name: str
    kind: FieldKind = FieldKind.INT

    def accepts(self, value: Any) -> bool:
        """True when ``value`` is storable in this field."""
        if self.kind is FieldKind.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, self.kind.python_type()) and not isinstance(
            value, bool
        )


class SchemaError(ValueError):
    """Raised for schema violations (unknown fields, arity mismatches...)."""


class Schema:
    """An ordered set of fields plus the fixed tuple width in bytes.

    Args:
        fields: the columns, in storage order.
        tuple_bytes: width of one stored tuple — the paper's ``S`` (its
            default value is 100 bytes).
    """

    def __init__(self, fields: Sequence[Field], tuple_bytes: int = 100) -> None:
        if not fields:
            raise SchemaError("a schema needs at least one field")
        if tuple_bytes <= 0:
            raise SchemaError("tuple_bytes must be positive")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in {names}")
        self.fields: tuple[Field, ...] = tuple(fields)
        self.tuple_bytes = tuple_bytes
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields and self.tuple_bytes == other.tuple_bytes

    def __hash__(self) -> int:
        return hash((self.fields, self.tuple_bytes))

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def has_field(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no field {name!r} in schema {self.names()}"
            ) from None

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def make_row(self, values: Iterable[Any]) -> Row:
        """Validate ``values`` against the schema and return them as a row."""
        row = tuple(values)
        if len(row) != len(self.fields):
            raise SchemaError(
                f"expected {len(self.fields)} values, got {len(row)}"
            )
        for field, value in zip(self.fields, row):
            if not field.accepts(value):
                raise SchemaError(
                    f"value {value!r} not valid for field "
                    f"{field.name!r} of kind {field.kind.value}"
                )
        return row

    def value(self, row: Row, name: str) -> Any:
        """Extract the value of field ``name`` from ``row``."""
        return row[self.index_of(name)]

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of a row of ``self`` with one of
        ``other`` — used for join results. Clashing names get a ``_r``
        suffix on the right side; widths add, mirroring the paper's
        assumption that joined procedure tuples are ``S`` bytes per input
        relation... rounded into whole pages downstream."""
        left_names = set(self.names())
        fields = list(self.fields)
        for f in other.fields:
            name = f.name if f.name not in left_names else f.name + "_r"
            fields.append(Field(name, f.kind))
            left_names.add(name)
        return Schema(fields, tuple_bytes=self.tuple_bytes + other.tuple_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Schema({self.names()}, S={self.tuple_bytes})"
