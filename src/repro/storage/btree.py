"""A B+-tree secondary index with duplicate support.

``R1`` carries a "B-tree primary index on the field used by the selection
predicate C_f(R1)" (paper §3). This module implements a real B+-tree: keyed
internal nodes, chained leaves, splits on overflow. Each node occupies one
simulated disk page, so descending the tree charges exactly ``height`` page
reads — the paper's ``C2 * H1`` term.

Duplicate keys are handled by indexing composite keys ``(key, rid)``, which
makes every entry unique and lets deletes target an exact entry. Deletion is
*lazy* (no node merging): nodes may become sparse but never incorrect, which
matches the paper's workload where ``R1`` has a fixed population and updates
are delete+insert pairs that keep occupancy stable.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.storage.buffer import BufferPool
from repro.storage.page import RID

CompositeKey = tuple  # (key, page_no, slot_no)

_MIN_FANOUT = 4


def _composite(key: Any, rid: RID) -> CompositeKey:
    return (key, rid.page_no, rid.slot_no)


def _low_sentinel(key: Any) -> CompositeKey:
    """Smallest composite with this key (RID components are >= 0)."""
    return (key, -1, -1)


class _HighSentinel:
    """Compares above every RID component, regardless of key type."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return not isinstance(other, _HighSentinel)

    def __le__(self, other: object) -> bool:
        return isinstance(other, _HighSentinel)

    def __ge__(self, other: object) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _HighSentinel)

    def __hash__(self) -> int:
        return hash("_HighSentinel")


_HIGH = _HighSentinel()


class _Node:
    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id


class _Leaf(_Node):
    __slots__ = ("entries", "next_leaf")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.entries: list[CompositeKey] = []
        self.next_leaf: Optional[int] = None


class _Internal(_Node):
    __slots__ = ("keys", "children")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.keys: list[CompositeKey] = []
        self.children: list[int] = []


class BPlusTree:
    """B+-tree index mapping field values to RIDs.

    Args:
        name: disk file name backing the index pages.
        buffer: buffer pool for I/O accounting.
        fanout: maximum entries per leaf / children per internal node — the
            paper's ``B/d`` (200 at defaults: 4 000-byte blocks, 20-byte
            index records).
    """

    def __init__(self, name: str, buffer: BufferPool, fanout: int = 200) -> None:
        if fanout < _MIN_FANOUT:
            raise ValueError(f"fanout must be >= {_MIN_FANOUT}")
        self.name = name
        self.buffer = buffer
        self.fanout = fanout
        if not buffer.disk.has_file(name):
            buffer.disk.create_file(name)
        self._nodes: dict[int, _Node] = {}
        self._num_entries = 0
        root = self._new_leaf()
        self._root_id = root.node_id

    # -- node management -------------------------------------------------

    def _register(self, node: _Node) -> None:
        # One simulated disk page per node; the allocation write models
        # formatting the new node's block.
        page = self.buffer.disk.allocate_page(self.name, capacity=1)
        assert page.page_no == node.node_id
        self._nodes[node.node_id] = node

    def _new_leaf(self) -> _Leaf:
        leaf = _Leaf(node_id=len(self._nodes))
        self._register(leaf)
        return leaf

    def _new_internal(self) -> _Internal:
        node = _Internal(node_id=len(self._nodes))
        self._register(node)
        return node

    def _visit(self, node_id: int) -> _Node:
        """Fetch a node, charging one page read (unless buffered)."""
        self.buffer.fetch(self.name, node_id)
        return self._nodes[node_id]

    def _dirty(self, node: _Node) -> None:
        self.buffer.mark_dirty(self.name, node.node_id)

    # -- public metadata --------------------------------------------------

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        """Number of levels from root to leaf inclusive (>= 1). Metadata
        only — charges no I/O."""
        levels = 1
        node = self._nodes[self._root_id]
        while isinstance(node, _Internal):
            levels += 1
            node = self._nodes[node.children[0]]
        return levels

    # -- descent ----------------------------------------------------------

    def _descend(self, composite: CompositeKey) -> tuple[list[_Internal], _Leaf]:
        """Walk root->leaf toward ``composite``; returns (path, leaf).

        Charges one read per level, which is the paper's ``C2 * H1`` descent
        cost.
        """
        path: list[_Internal] = []
        node = self._visit(self._root_id)
        while isinstance(node, _Internal):
            path.append(node)
            child_idx = bisect.bisect_right(node.keys, composite)
            node = self._visit(node.children[child_idx])
        assert isinstance(node, _Leaf)
        return path, node

    # -- mutation ---------------------------------------------------------

    def insert(self, key: Any, rid: RID) -> None:
        """Add an entry; splits propagate upward as needed."""
        composite = _composite(key, rid)
        path, leaf = self._descend(composite)
        idx = bisect.bisect_left(leaf.entries, composite)
        if idx < len(leaf.entries) and leaf.entries[idx] == composite:
            raise ValueError(f"duplicate index entry {composite}")
        leaf.entries.insert(idx, composite)
        self._dirty(leaf)
        self._num_entries += 1
        if len(leaf.entries) > self.fanout:
            self._split_leaf(path, leaf)

    def _split_leaf(self, path: list[_Internal], leaf: _Leaf) -> None:
        mid = len(leaf.entries) // 2
        right = self._new_leaf()
        right.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right.node_id
        self._dirty(leaf)
        self._dirty(right)
        self._insert_in_parent(path, leaf.node_id, right.entries[0], right.node_id)

    def _insert_in_parent(
        self,
        path: list[_Internal],
        left_id: int,
        separator: CompositeKey,
        right_id: int,
    ) -> None:
        if not path:
            new_root = self._new_internal()
            new_root.keys = [separator]
            new_root.children = [left_id, right_id]
            self._root_id = new_root.node_id
            self._dirty(new_root)
            return
        parent = path[-1]
        pos = parent.children.index(left_id)
        parent.keys.insert(pos, separator)
        parent.children.insert(pos + 1, right_id)
        self._dirty(parent)
        if len(parent.children) > self.fanout:
            self._split_internal(path[:-1], parent)

    def _split_internal(self, path: list[_Internal], node: _Internal) -> None:
        mid = len(node.keys) // 2
        promoted = node.keys[mid]
        right = self._new_internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._dirty(node)
        self._dirty(right)
        self._insert_in_parent(path, node.node_id, promoted, right.node_id)

    def delete(self, key: Any, rid: RID) -> bool:
        """Remove the entry for ``(key, rid)``; returns whether it existed.

        Lazy deletion: leaves are never merged, so the tree only shrinks in
        entry count, not in structure.
        """
        composite = _composite(key, rid)
        _path, leaf = self._descend(composite)
        idx = bisect.bisect_left(leaf.entries, composite)
        if idx >= len(leaf.entries) or leaf.entries[idx] != composite:
            return False
        del leaf.entries[idx]
        self._dirty(leaf)
        self._num_entries -= 1
        return True

    # -- lookup -----------------------------------------------------------

    def search(self, key: Any) -> list[RID]:
        """All RIDs indexed under exactly ``key``."""
        return [rid for found_key, rid in self.range_scan(key, key)]

    def range_scan(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[Any, RID]]:
        """Yield ``(key, rid)`` for entries with ``lo <= key <= hi``.

        ``None`` bounds are open-ended. Charges the descent reads plus one
        read per leaf visited, which is how the paper accounts an index
        interval scan.
        """
        if lo is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            start_idx = 0
        else:
            sentinel = _low_sentinel(lo)
            _path, first = self._descend(sentinel)
            leaf = first
            start_idx = bisect.bisect_left(first.entries, sentinel)
            if not lo_inclusive:
                while (
                    start_idx < len(first.entries)
                    and first.entries[start_idx][0] == lo
                ):
                    start_idx += 1
        while leaf is not None:
            for entry in leaf.entries[start_idx:]:
                key = entry[0]
                if hi is not None:
                    if hi_inclusive and key > hi:
                        return
                    if not hi_inclusive and key >= hi:
                        return
                yield key, RID(entry[1], entry[2])
            if leaf.next_leaf is None:
                return
            leaf = self._visit(leaf.next_leaf)  # type: ignore[assignment]
            start_idx = 0

    def floor_entry(self, key: Any) -> Optional[tuple[Any, RID]]:
        """The largest entry with ``entry.key <= key`` (or ``None``).

        Charges one descent. Only looks within the landing leaf, so an
        entry in an earlier leaf may be missed when ``key`` falls before a
        leaf boundary — callers (clustered relocation) only need a nearby
        neighbour, not the exact predecessor.
        """
        sentinel = (key, _HIGH, _HIGH)
        _path, leaf = self._descend(sentinel)
        idx = bisect.bisect_right(leaf.entries, sentinel)
        if idx == 0:
            return None
        entry = leaf.entries[idx - 1]
        return entry[0], RID(entry[1], entry[2])

    def _leftmost_leaf(self) -> _Leaf:
        node = self._visit(self._root_id)
        while isinstance(node, _Internal):
            node = self._visit(node.children[0])
        assert isinstance(node, _Leaf)
        return node

    # -- integrity (tests) -------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises ``AssertionError`` on any
        violation. Used by the property-based test suite."""
        self._check_node(self._root_id, None, None, is_root=True)
        # Leaf chain must be globally sorted and cover every entry.
        entries: list[CompositeKey] = []
        node = self._nodes[self._root_id]
        while isinstance(node, _Internal):
            node = self._nodes[node.children[0]]
        leaf: Optional[_Leaf] = node  # type: ignore[assignment]
        while leaf is not None:
            entries.extend(leaf.entries)
            leaf = (
                self._nodes[leaf.next_leaf]  # type: ignore[assignment]
                if leaf.next_leaf is not None
                else None
            )
        assert entries == sorted(entries), "leaf chain out of order"
        assert len(entries) == self._num_entries, "entry count drift"

    def _check_node(
        self,
        node_id: int,
        lo: Optional[CompositeKey],
        hi: Optional[CompositeKey],
        is_root: bool = False,
    ) -> int:
        node = self._nodes[node_id]
        if isinstance(node, _Leaf):
            assert node.entries == sorted(node.entries)
            assert len(node.entries) <= self.fanout
            for entry in node.entries:
                assert lo is None or entry >= lo, "entry below subtree bound"
                assert hi is None or entry < hi, "entry above subtree bound"
            return 1
        assert isinstance(node, _Internal)
        assert node.keys == sorted(node.keys)
        assert len(node.children) == len(node.keys) + 1
        assert len(node.children) <= self.fanout
        if not is_root:
            assert len(node.children) >= 2
        depths = set()
        bounds = [lo] + list(node.keys) + [hi]
        for i, child_id in enumerate(node.children):
            depths.add(self._check_node(child_id, bounds[i], bounds[i + 1]))
        assert len(depths) == 1, "unbalanced subtree depths"
        return depths.pop() + 1
