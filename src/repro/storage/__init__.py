"""Simulated relational storage engine.

This package implements the substrate the paper's strategies run on: slotted
pages, a disk manager that charges ``C2`` per page read/write, an optional
LRU buffer pool, heap files with update-in-place, a B+-tree index (used by
``R1``'s selection attribute), a hash index (used by the join attributes of
``R2``/``R3``), and a catalog tying relations to their access methods.

All structures are real — pages actually hold tuples, the B+-tree actually
splits — but I/O is charged to a shared :class:`repro.sim.CostClock` instead
of being performed against a physical disk.
"""

from repro.storage.tuples import Field, FieldKind, Row, Schema
from repro.storage.columnar import (
    ColumnBatch,
    columnar_enabled,
    columnar_mode,
    set_columnar_enabled,
)
from repro.storage.page import Page, RID
from repro.storage.disk import DiskManager
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.btree import BPlusTree
from repro.storage.hashindex import HashIndex
from repro.storage.catalog import Catalog, Relation
from repro.storage.matstore import MaterializedStore

__all__ = [
    "Field",
    "FieldKind",
    "Row",
    "Schema",
    "ColumnBatch",
    "columnar_enabled",
    "columnar_mode",
    "set_columnar_enabled",
    "Page",
    "RID",
    "DiskManager",
    "BufferPool",
    "HeapFile",
    "BPlusTree",
    "HashIndex",
    "Catalog",
    "Relation",
    "MaterializedStore",
]
