"""Struct-of-arrays column batches over row tuples.

The simulator's hot paths — scans, update screening, Rete routing, i-lock
probes — historically walked Python tuples one at a time. A
:class:`ColumnBatch` transposes a list of rows into per-field numpy arrays
so predicates compile once per (predicate, schema) pair and evaluate over a
whole batch with vectorized comparisons.

Two invariants make the columnar path safe to flip on and off:

- **Rows are retained, never reconstructed.** A batch keeps the original
  row tuples alongside the column arrays, and every selection returns those
  exact objects. Nothing downstream ever sees a numpy scalar where a Python
  ``int``/``str`` used to be (``np.int64`` is not a Python ``int``, so
  reconstructed rows would fail :meth:`Schema.make_row` and hash/compare
  differently in stores).
- **Charging is count-based.** The simulated clock charges ``C1 * n`` for a
  batch of ``n`` screens instead of ``n`` separate ``C1`` charges; with the
  paper's integer-valued cost constants the sums are bit-identical, which
  the columnar differential tests pin.

The toggle below gates every vectorized code path; the dict path remains
the reference implementation (and the wall-clock bench's baseline mode).
Set ``REPRO_COLUMNAR=0`` in the environment to start with it disabled.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.storage.tuples import FieldKind, Row, Schema

#: numpy dtypes per field kind. INT columns fall back to ``object`` when a
#: value overflows int64 (Python ints are unbounded); STR columns are always
#: ``object`` so comparisons keep exact Python string semantics.
_DTYPES = {
    FieldKind.INT: np.int64,
    FieldKind.FLOAT: np.float64,
    FieldKind.STR: object,
}

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _column_array(values: tuple, kind: FieldKind) -> np.ndarray:
    dtype = _DTYPES[kind]
    if dtype is object:
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out
    try:
        return np.asarray(values, dtype=dtype)
    except (OverflowError, TypeError, ValueError):
        # Out-of-range ints, None, or mixed junk: keep Python semantics.
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out


class ColumnBatch:
    """A schema-typed batch of rows with lazily usable column vectors.

    The batch is immutable: columns are built once from the row list at
    construction and the retained ``rows`` list must not be mutated.
    """

    __slots__ = ("schema", "rows", "_columns")

    def __init__(self, schema: Schema, rows: Sequence[Row]) -> None:
        self.schema = schema
        self.rows: list[Row] = list(rows)
        self._columns: list[np.ndarray | None] = [None] * len(schema)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Row]) -> "ColumnBatch":
        return cls(schema, list(rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column_at(self, pos: int) -> np.ndarray:
        """The column vector for field position ``pos`` (built on demand)."""
        column = self._columns[pos]
        if column is None:
            values = tuple(row[pos] for row in self.rows)
            column = _column_array(values, self.schema.fields[pos].kind)
            self._columns[pos] = column
        return column

    def column(self, name: str) -> np.ndarray:
        """The column vector for field ``name``."""
        return self.column_at(self.schema.index_of(name))

    def select(self, mask: np.ndarray) -> list[Row]:
        """The original row objects where ``mask`` is true, in row order."""
        rows = self.rows
        return [rows[i] for i in np.flatnonzero(mask)]

    def take(self, indices: np.ndarray | Sequence[int]) -> "ColumnBatch":
        """A sub-batch of the given row indices (rows stay shared objects)."""
        rows = self.rows
        return ColumnBatch(self.schema, [rows[i] for i in indices])

    def to_rows(self) -> list[Row]:
        """The retained row tuples (shared, not copied)."""
        return self.rows

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ColumnBatch({len(self.rows)} rows, {len(self.schema)} cols)"


def int64_bounds() -> tuple[int, int]:
    """The representable range of an INT column before object fallback."""
    return _INT64_MIN, _INT64_MAX


# -- the columnar toggle ------------------------------------------------------

_ENABLED = os.environ.get("REPRO_COLUMNAR", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def columnar_enabled() -> bool:
    """Whether vectorized hot paths are active (default: yes)."""
    return _ENABLED


def set_columnar_enabled(enabled: bool) -> bool:
    """Flip the columnar toggle; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def columnar_mode(enabled: bool) -> Iterator[None]:
    """Run a block with the toggle forced to ``enabled`` (then restore)."""
    previous = set_columnar_enabled(enabled)
    try:
        yield
    finally:
        set_columnar_enabled(previous)


def vector_compare(column: np.ndarray, op: str, value: Any) -> np.ndarray:
    """Vectorized ``column <op> value`` matching Python's scalar semantics.

    int64 columns compared against an out-of-range Python int are resolved
    analytically (ordering against ±2^63 is constant; equality is constant
    false) — numpy would overflow under 1.x or raise under NEP 50.
    """
    if (
        column.dtype.kind in "iu"
        and isinstance(value, int)
        and not isinstance(value, bool)
        and not _INT64_MIN <= value <= _INT64_MAX
    ):
        n = len(column)
        if op == "=":
            return np.zeros(n, dtype=bool)
        if op == "!=":
            return np.ones(n, dtype=bool)
        # value beyond int64: every column element is < value when value is
        # huge-positive, > value when huge-negative.
        huge_positive = value > _INT64_MAX
        if op in ("<", "<="):
            return np.full(n, huge_positive, dtype=bool)
        return np.full(n, not huge_positive, dtype=bool)
    if op == "<":
        result = column < value
    elif op == "<=":
        result = column <= value
    elif op == "=":
        result = column == value
    elif op == "!=":
        result = column != value
    elif op == ">=":
        result = column >= value
    else:
        result = column > value
    # Object-dtype comparisons may come back as object arrays of bools.
    return np.asarray(result, dtype=bool)
