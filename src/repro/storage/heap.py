"""Heap files: unordered tuple storage with stable RIDs.

A heap file stores a relation's tuples in slotted pages. Tuples per page is
``B // S`` (40 at the paper's defaults). Updates are in-place — the paper's
update transactions "modify ``l`` tuples of ``R1`` in place" — so a tuple's
RID never changes and indexes stay valid across value updates of non-key
fields.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

from repro.storage.buffer import BufferPool
from repro.storage.page import Page, RID
from repro.storage.tuples import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.columnar import ColumnBatch


class HeapFile:
    """One relation's tuple storage.

    Args:
        name: file name in the disk manager (usually the relation name).
        schema: the relation's schema; fixes the per-page tuple capacity.
        buffer: buffer pool used for all page access (charges the clock).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        buffer: BufferPool,
        fill_factor: float = 1.0,
    ) -> None:
        if not 0 < fill_factor <= 1:
            raise ValueError("fill_factor must be in (0, 1]")
        self.name = name
        self.schema = schema
        self.buffer = buffer
        disk = buffer.disk
        self.tuples_per_page = max(1, disk.block_bytes // schema.tuple_bytes)
        # Regular inserts stop at fill_factor * capacity, reserving in-page
        # slack so clustered relocation (insert_near) can keep moved tuples
        # next to their key neighbours — standard practice for clustered
        # tables. insert_near may fill pages to true capacity.
        self.fill_threshold = max(1, int(self.tuples_per_page * fill_factor))
        if not disk.has_file(name):
            disk.create_file(name)
        self._num_rows = 0
        # Page numbers known to have at least one free slot. Metadata only —
        # a real system would keep this in a free-space map page.
        self._free_pages: set[int] = set()
        # Lazy min-heap over pages that may still be below fill_threshold.
        # Entries go stale when insert_near fills a page past the threshold;
        # insert pops them on contact, so selecting the lowest-numbered
        # open page is O(log n) amortised instead of a full sorted scan.
        self._open_heap: list[int] = []
        self._open_set: set[int] = set()

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_pages(self) -> int:
        return self.buffer.disk.num_pages(self.name)

    def _note_open(self, page_no: int) -> None:
        """Record that ``page_no`` may have dropped below the threshold."""
        if page_no not in self._open_set:
            self._open_set.add(page_no)
            heapq.heappush(self._open_heap, page_no)

    def _drop_open(self, page_no: int) -> None:
        if page_no in self._open_set and (
            self._open_heap and self._open_heap[0] == page_no
        ):
            self._open_set.discard(page_no)
            heapq.heappop(self._open_heap)

    def insert(self, row: Row) -> RID:
        """Store ``row`` and return its RID (one read + one write, or a
        single formatting write when a fresh page is allocated).

        Placement picks the lowest-numbered page still below the fill
        threshold (the same page the historical sorted free-set scan chose),
        found through the lazy heap above.
        """
        row = self.schema.make_row(row)
        page_no = None
        while self._open_heap:
            candidate = self._open_heap[0]
            candidate_page = self.buffer.disk.peek_page(self.name, candidate)
            if len(candidate_page) < self.fill_threshold:
                page_no = candidate
                break
            # Stale entry: insert_near filled it to (or past) the threshold.
            self._open_set.discard(candidate)
            heapq.heappop(self._open_heap)
        if page_no is not None:
            page = self.buffer.fetch(self.name, page_no)
        else:
            page = self.buffer.disk.allocate_page(self.name, self.tuples_per_page)
            page_no = page.page_no
            self._free_pages.add(page_no)
            self._note_open(page_no)
        slot_no = page.insert(row)
        if page.is_full:
            self._free_pages.discard(page_no)
        if len(page) >= self.fill_threshold:
            self._drop_open(page_no)
        self.buffer.mark_dirty(self.name, page_no)
        self._num_rows += 1
        return RID(page_no, slot_no)

    def insert_near(self, row: Row, preferred_page_no: int) -> RID:
        """Insert ``row`` into ``preferred_page_no`` when it has space,
        falling back to a normal insert. Used to keep a relation clustered
        on its primary key when updates move a tuple's key: the new version
        is placed next to its key neighbours."""
        row = self.schema.make_row(row)
        if 0 <= preferred_page_no < self.num_pages:
            page = self.buffer.fetch(self.name, preferred_page_no)
            if not page.is_full:
                slot_no = page.insert(row)
                if page.is_full:
                    self._free_pages.discard(preferred_page_no)
                else:
                    self._free_pages.add(preferred_page_no)
                self.buffer.mark_dirty(self.name, preferred_page_no)
                self._num_rows += 1
                return RID(preferred_page_no, slot_no)
        return self.insert(row)

    def bulk_load(self, rows: Iterable[Row]) -> list[RID]:
        """Insert many rows; same accounting as repeated :meth:`insert`."""
        return [self.insert(row) for row in rows]

    def read(self, rid: RID) -> Row:
        """Fetch the row at ``rid`` (one page read)."""
        page = self.buffer.fetch(self.name, rid.page_no)
        return page.read(rid.slot_no)

    def update(self, rid: RID, new_row: Row) -> Row:
        """Overwrite the row at ``rid`` in place; returns the old row."""
        new_row = self.schema.make_row(new_row)
        page = self.buffer.fetch(self.name, rid.page_no)
        old_row = page.read(rid.slot_no)
        page.overwrite(rid.slot_no, new_row)
        self.buffer.mark_dirty(self.name, rid.page_no)
        return old_row

    def delete(self, rid: RID) -> Row:
        """Remove and return the row at ``rid``."""
        page = self.buffer.fetch(self.name, rid.page_no)
        old_row = page.delete(rid.slot_no)
        self.buffer.mark_dirty(self.name, rid.page_no)
        self._free_pages.add(rid.page_no)
        if len(page) < self.fill_threshold:
            self._note_open(rid.page_no)
        self._num_rows -= 1
        return old_row

    def scan(self) -> Iterator[tuple[RID, Row]]:
        """Full scan: reads every page once, yielding ``(rid, row)``."""
        for page_no in range(self.num_pages):
            page = self.buffer.fetch(self.name, page_no)
            for slot_no, row in page.rows():
                yield RID(page_no, slot_no), row

    def scan_batches(
        self,
    ) -> Iterator[tuple[int, list[int], "ColumnBatch"]]:
        """Columnar full scan: one ``(page_no, slot_nos, ColumnBatch)`` per
        page, with exactly the same page-fetch accounting as :meth:`scan`
        (every page read once, empty pages included)."""
        for page_no in range(self.num_pages):
            page = self.buffer.fetch(self.name, page_no)
            slot_nos, batch = page.column_batch(self.schema)
            yield page_no, slot_nos, batch

    def find_first(
        self, matches: Callable[[Row], bool]
    ) -> Optional[tuple[RID, Row]]:
        """Scan until the first row satisfying ``matches`` (or ``None``)."""
        for rid, row in self.scan():
            if matches(row):
                return rid, row
        return None

    def scan_uncharged(self) -> Iterator[tuple[RID, Row]]:
        """Full scan without I/O accounting.

        For build-time work only (populating Rete memories when a procedure
        is defined) — the paper treats plan/network construction as a
        one-time cost outside the per-access analysis.
        """
        disk = self.buffer.disk
        for page_no in range(self.num_pages):
            page = disk.peek_page(self.name, page_no)
            for slot_no, row in page.rows():
                yield RID(page_no, slot_no), row

    def _page_uncharged(self, page_no: int) -> Page:
        """Direct page access without I/O accounting — tests only."""
        return self.buffer.disk.peek_page(self.name, page_no)
