"""Hash indexes.

``R2`` and ``R3`` carry "hashed primary indexes" on their join attributes
(paper §3). The paper charges a hash probe only for the *data pages* it
touches — probing ``k`` keys of a relation with ``n`` tuples on ``m`` pages
costs ``y(n, m, k)`` page reads (the Yao function), i.e. one read per
distinct heap page holding a matching tuple. The hash directory itself is
assumed memory-resident and free.

We model exactly that: the directory is an in-memory ``dict`` from key to
RIDs, and the join operators batch-fetch the matching heap pages (each
distinct page once per query), which makes the *measured* page count a draw
from the same distribution the Yao function gives the expectation of.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.page import RID


class HashIndex:
    """An equality index: key -> set of RIDs.

    Args:
        name: diagnostic name (e.g. ``"R2.b"``).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: dict[Any, list[RID]] = {}
        self._num_entries = 0

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def num_keys(self) -> int:
        return len(self._buckets)

    def insert(self, key: Any, rid: RID) -> None:
        """Register ``rid`` under ``key``."""
        bucket = self._buckets.setdefault(key, [])
        if rid in bucket:
            raise ValueError(f"duplicate hash entry ({key!r}, {rid})")
        bucket.append(rid)
        self._num_entries += 1

    def delete(self, key: Any, rid: RID) -> bool:
        """Remove one entry; returns whether it existed."""
        bucket = self._buckets.get(key)
        if not bucket or rid not in bucket:
            return False
        bucket.remove(rid)
        if not bucket:
            del self._buckets[key]
        self._num_entries -= 1
        return True

    def probe(self, key: Any) -> list[RID]:
        """RIDs of tuples whose indexed field equals ``key``.

        Directory access only — data-page I/O is charged when the caller
        fetches the returned RIDs from the heap.
        """
        return list(self._buckets.get(key, ()))

    def items(self) -> Iterator[tuple[Any, RID]]:
        for key, bucket in self._buckets.items():
            for rid in bucket:
                yield key, rid

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets
