"""Page-backed materialized row stores.

A :class:`MaterializedStore` holds the materialised value of a procedure
result, an α-memory, or a β-memory: a multiset of rows laid out on simulated
disk pages. All of the paper's cache-side costs flow through it:

- ``C_read = C2 * ProcSize`` — :meth:`read_all` reads every page;
- ``C_WriteCache = 2 * C2 * ProcSize`` — :meth:`refresh` reads and rewrites
  every page of the new value;
- refresh-after-update ``2 * C2 * y(n, m, 2fl)`` — :meth:`apply_delta`
  touches (read + write) only the distinct pages holding changed tuples;
- and-node probes ``C2 * y(...)`` — :meth:`probe_many` fetches only the
  distinct pages holding matching tuples.

Row placement is randomised across pages with free space so that the pages
touched by a small delta follow the scattered-access distribution whose
expectation is the Yao function, exactly as the paper's model assumes.

Hash directories (value -> RIDs, per field) are memory-resident and free,
mirroring the treatment of hash indexes on base relations.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable

from repro.storage.buffer import BufferPool
from repro.storage.page import RID
from repro.storage.tuples import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.columnar import ColumnBatch


class MaterializedStore:
    """A paged multiset of rows with free-space-aware random placement.

    Args:
        name: backing disk file name (unique per store).
        schema: row schema; ``schema.tuple_bytes`` fixes page capacity. The
            paper assumes procedure-result tuples are ``S`` bytes regardless
            of join arity, so callers may pass a schema with an overridden
            width.
        buffer: buffer pool (charges the shared clock).
        seed: RNG seed for row placement.
    """

    def __init__(
        self, name: str, schema: Schema, buffer: BufferPool, seed: int = 0
    ) -> None:
        self.name = name
        self.schema = schema
        self.buffer = buffer
        disk = buffer.disk
        self.tuples_per_page = max(1, disk.block_bytes // schema.tuple_bytes)
        if not disk.has_file(name):
            disk.create_file(name)
        self._rng = random.Random(seed)
        self._rids: dict[Row, list[RID]] = {}
        self._free_pages: list[int] = []
        self._directories: dict[str, dict[Any, list[RID]]] = {}
        self._num_rows = 0

    # -- metadata ------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_pages(self) -> int:
        return self.buffer.disk.num_pages(self.name)

    def ensure_directory(self, field: str) -> None:
        """Create (once) an in-memory hash directory on ``field``."""
        if field in self._directories:
            return
        pos = self.schema.index_of(field)
        directory: dict[Any, list[RID]] = {}
        for row, rids in self._rids.items():
            for rid in rids:
                directory.setdefault(row[pos], []).append(rid)
        self._directories[field] = directory

    # -- internal placement -----------------------------------------------------

    def _place(self, row: Row) -> RID:
        """Put ``row`` on a random page with free space (page I/O is charged
        by the caller, which batches page touches)."""
        disk = self.buffer.disk
        if not self._free_pages:
            # Allocation is uncharged here: callers batch-charge every page
            # they touch (including fresh ones) after placement.
            page = disk.allocate_page(self.name, self.tuples_per_page, charge=False)
            self._free_pages.append(page.page_no)
        page_no = self._rng.choice(self._free_pages)
        page = disk.peek_page(self.name, page_no)
        slot_no = page.insert(row)
        if page.is_full:
            self._free_pages.remove(page_no)
        rid = RID(page_no, slot_no)
        self._rids.setdefault(row, []).append(rid)
        for field, directory in self._directories.items():
            pos = self.schema.index_of(field)
            directory.setdefault(row[pos], []).append(rid)
        self._num_rows += 1
        return rid

    def _remove(self, row: Row) -> RID:
        """Remove one instance of ``row`` (I/O charged by the caller)."""
        rids = self._rids.get(row)
        if not rids:
            raise KeyError(f"row not present in store {self.name}: {row!r}")
        rid = rids.pop()
        if not rids:
            del self._rids[row]
        page = self.buffer.disk.peek_page(self.name, rid.page_no)
        page.delete(rid.slot_no)
        if rid.page_no not in self._free_pages:
            self._free_pages.append(rid.page_no)
        for field, directory in self._directories.items():
            pos = self.schema.index_of(field)
            bucket = directory[row[pos]]
            bucket.remove(rid)
            if not bucket:
                del directory[row[pos]]
        self._num_rows -= 1
        return rid

    # -- bulk operations (the paper's cost events) -------------------------------

    def apply_delta(
        self, inserts: Iterable[Row], deletes: Iterable[Row]
    ) -> int:
        """Apply a differential update, charging one read and one write per
        *distinct* page touched. Returns the number of pages touched.

        Deletes are processed before inserts so an update transaction
        (delete old value, insert new value) can reuse slots.
        """
        touched: set[int] = set()
        for row in deletes:
            touched.add(self._remove(row).page_no)
        for row in inserts:
            checked = self.schema.make_row(row)
            touched.add(self._place(checked).page_no)
        return self.buffer.fetch_many(self.name, touched, mark_dirty=True)

    def refresh(self, rows: Iterable[Row]) -> int:
        """Replace the entire contents with ``rows``.

        Charges one read plus one write per page of the *new* value — the
        paper's ``C_WriteCache = 2 * C2 * ProcSize`` ("read the pages
        currently in the cache, change their value, and write them back").
        Returns the number of pages of the new value.
        """
        self._clear_silently()
        touched: set[int] = set()
        for row in rows:
            checked = self.schema.make_row(row)
            touched.add(self._place(checked).page_no)
        return self.buffer.fetch_many(self.name, touched, mark_dirty=True)

    def _clear_silently(self) -> None:
        """Drop all rows without I/O (deallocation is a metadata operation)."""
        disk = self.buffer.disk
        for page_no in range(self.num_pages):
            page = disk.peek_page(self.name, page_no)
            for slot_no, _row in list(page.rows()):
                page.delete(slot_no)
        self._rids.clear()
        for directory in self._directories.values():
            directory.clear()
        self._free_pages = list(range(self.num_pages))
        self._num_rows = 0
        self.buffer.invalidate_file(self.name)

    def load_silently(self, rows: Iterable[Row]) -> None:
        """Populate the store without charging I/O.

        Build-time only: initialising a Rete memory or seeding a cache when
        a procedure is defined, which the paper treats as a one-time cost
        outside the per-access analysis.
        """
        for row in rows:
            self._place(self.schema.make_row(row))

    def read_all(self) -> list[Row]:
        """Read the full contents — one ``C2`` per occupied page (the
        paper's ``C_read``). Empty pages left by deletes are skipped, the
        way a page directory allows."""
        disk = self.buffer.disk
        if disk.injector is not None:
            # The ``cache.read`` fault point: may tear one of this store's
            # pages just before the read, so the checksum verification in
            # the page fetches below detects it in-flight.
            disk.injector.on_cache_read(self, disk.clock)
        out: list[Row] = []
        for page_no in range(self.num_pages):
            page = self.buffer.disk.peek_page(self.name, page_no)
            if page.is_empty:
                continue
            self.buffer.fetch(self.name, page_no)
            out.extend(row for _slot, row in page.rows())
        return out

    def peek_all(self) -> list[Row]:
        """Contents without I/O accounting — tests and invariants only."""
        return [row for row, rids in self._rids.items() for _ in rids]

    def column_batch(self) -> "ColumnBatch":
        """The current contents as a struct-of-arrays batch (uncharged,
        like :meth:`peek_all`) — the columnar view of this memory for
        vectorized screens and aggregate rebuilds."""
        from repro.storage.columnar import ColumnBatch

        return ColumnBatch(self.schema, self.peek_all())

    def probe_many(
        self, field: str, values: Iterable[Any]
    ) -> dict[Any, list[Row]]:
        """Rows matching each probe value, reading each distinct page once.

        This is the α/β-memory join probe: directory lookup is free, data
        pages cost ``C2`` each — the paper's ``Y5``/``Y8`` terms.
        """
        self.ensure_directory(field)
        directory = self._directories[field]
        hits: dict[Any, list[RID]] = {}
        pages: set[int] = set()
        for value in values:
            rids = directory.get(value, [])
            hits[value] = rids
            pages.update(rid.page_no for rid in rids)
        self.buffer.fetch_many(self.name, pages)
        out: dict[Any, list[Row]] = {}
        for value, rids in hits.items():
            rows = []
            for rid in rids:
                page = self.buffer.disk.peek_page(self.name, rid.page_no)
                rows.append(page.read(rid.slot_no))
            out[value] = rows
        return out

    def contains(self, row: Row) -> bool:
        """Whether at least one instance of ``row`` is stored."""
        return row in self._rids

    def count(self, row: Row) -> int:
        """Number of stored instances of ``row`` (multiset count)."""
        return len(self._rids.get(row, ()))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"MaterializedStore({self.name}, rows={self._num_rows}, "
            f"pages={self.num_pages})"
        )
