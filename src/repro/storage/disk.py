"""The simulated disk.

The disk manager owns every page of every file and charges the cost clock
``C2`` for each page read and each page write. It deliberately has *no*
caching — the paper's cost model assumes every page touch is a disk I/O.
Caching, when wanted, is layered on top by :class:`repro.storage.BufferPool`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim import CostClock
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


class UnknownFileError(KeyError):
    """Raised when addressing a file the disk has never heard of."""


def _file_group(name: str) -> str:
    """Coarse per-file-family label for I/O counters: ``cache.p12`` and
    ``rete.beta.7`` both collapse to their first dotted component, base
    relation heaps (``R1``) stay as-is — keeps metric cardinality bounded
    however many procedures a run defines."""
    dot = name.find(".")
    return name if dot < 0 else name[:dot]


class DiskManager:
    """A set of named files, each an extendable array of pages.

    Args:
        clock: the shared cost clock charged for every I/O.
        block_bytes: bytes per disk block — the paper's ``B``.
    """

    def __init__(self, clock: CostClock, block_bytes: int = 4000) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.clock = clock
        self.block_bytes = block_bytes
        self._files: dict[str, list[Page]] = {}
        #: Optional fault injector (chaos runs only). ``None`` keeps every
        #: I/O on the exact pre-fault-subsystem path — the zero-overhead
        #: guard, mirroring ``clock.tracer is None``.
        self.injector: "FaultInjector | None" = None

    def create_file(self, name: str) -> None:
        """Register an empty file; idempotent re-creation is an error."""
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        self._files[name] = []

    def has_file(self, name: str) -> bool:
        return name in self._files

    def drop_file(self, name: str) -> None:
        """Remove a file and all its pages (no I/O charged)."""
        self._pages(name)
        del self._files[name]

    def _pages(self, name: str) -> list[Page]:
        try:
            return self._files[name]
        except KeyError:
            raise UnknownFileError(f"no file named {name!r}") from None

    def num_pages(self, name: str) -> int:
        return len(self._pages(name))

    def allocate_page(self, name: str, capacity: int, charge: bool = True) -> Page:
        """Append a fresh page to ``name`` and return it.

        ``charge=True`` bills one write (formatting the new block);
        ``charge=False`` is for callers that account the page's first write
        themselves (e.g. batched store deltas) or run at definition time.
        """
        pages = self._pages(name)
        page = Page(page_no=len(pages), capacity=capacity)
        pages.append(page)
        if charge:
            tracer = self.clock.tracer
            if tracer is not None:
                tracer.event("disk.alloc.pages")
            self.clock.charge_write(1)
        return page

    def read_page(self, name: str, page_no: int) -> Page:
        """Fetch a page, charging one disk read."""
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise IndexError(f"file {name!r} has no page {page_no}")
        tracer = self.clock.tracer
        if tracer is not None:
            tracer.event("disk.read.pages")
            tracer.event(f"disk.read.pages:{_file_group(name)}")
        self.clock.charge_read(1)
        page = pages[page_no]
        if self.injector is not None:
            self.injector.before_read(name, page, self.clock)
            if not page.checksum_ok():
                self.injector.corruption_detected(name, page_no, self.clock)
        return page

    def write_page(self, name: str, page_no: int) -> None:
        """Charge one disk write for flushing ``page_no``.

        Pages are mutated in memory by callers; this call accounts for the
        flush. Separating mutation from accounting lets the buffer pool defer
        and coalesce writes.
        """
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise IndexError(f"file {name!r} has no page {page_no}")
        tracer = self.clock.tracer
        if tracer is not None:
            tracer.event("disk.write.pages")
            tracer.event(f"disk.write.pages:{_file_group(name)}")
        self.clock.charge_write(1)
        if self.injector is not None:
            self.injector.before_write(name, pages[page_no], self.clock)

    def peek_page(self, name: str, page_no: int) -> Page:
        """Fetch a page *without* charging I/O.

        Only the buffer pool (cache hits) and test assertions should use
        this; strategy code must go through :meth:`read_page`.
        """
        pages = self._pages(name)
        if not 0 <= page_no < len(pages):
            raise IndexError(f"file {name!r} has no page {page_no}")
        return pages[page_no]

    def file_names(self) -> list[str]:
        return sorted(self._files)
