"""The catalog: relations and their access methods.

A :class:`Relation` bundles a heap file with its indexes and keeps the
indexes consistent across inserts, deletes, and in-place updates. The
:class:`Catalog` is the namespace the query layer resolves relation names
against.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.hashindex import HashIndex
from repro.storage.heap import HeapFile
from repro.storage.page import RID
from repro.storage.tuples import Row, Schema


class Relation:
    """A named relation: heap storage plus B-tree / hash indexes.

    Index maintenance is automatic: every mutation routed through the
    relation keeps all indexes in sync with the heap.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        buffer: BufferPool,
        fill_factor: float = 1.0,
    ) -> None:
        self.name = name
        self.schema = schema
        self.heap = HeapFile(name, schema, buffer, fill_factor=fill_factor)
        self.btree_indexes: dict[str, BPlusTree] = {}
        self.hash_indexes: dict[str, HashIndex] = {}

    # -- index creation ----------------------------------------------------

    def create_btree_index(self, field: str, fanout: int = 200) -> BPlusTree:
        """Build a B+-tree on ``field``, back-filling existing tuples."""
        self.schema.index_of(field)
        if field in self.btree_indexes:
            raise ValueError(f"{self.name} already has a B-tree on {field!r}")
        index = BPlusTree(f"{self.name}.btree.{field}", self.heap.buffer, fanout)
        pos = self.schema.index_of(field)
        for rid, row in self.heap.scan():
            index.insert(row[pos], rid)
        self.btree_indexes[field] = index
        return index

    def create_hash_index(self, field: str) -> HashIndex:
        """Build a hash index on ``field``, back-filling existing tuples."""
        self.schema.index_of(field)
        if field in self.hash_indexes:
            raise ValueError(f"{self.name} already has a hash index on {field!r}")
        index = HashIndex(f"{self.name}.hash.{field}")
        pos = self.schema.index_of(field)
        for rid, row in self.heap.scan():
            index.insert(row[pos], rid)
        self.hash_indexes[field] = index
        return index

    # -- mutation with index maintenance ------------------------------------

    def insert(self, row: Row) -> RID:
        row = self.schema.make_row(row)
        rid = self.heap.insert(row)
        for field, index in self.btree_indexes.items():
            index.insert(self.schema.value(row, field), rid)
        for field, hash_index in self.hash_indexes.items():
            hash_index.insert(self.schema.value(row, field), rid)
        return rid

    def delete(self, rid: RID) -> Row:
        old = self.heap.delete(rid)
        for field, index in self.btree_indexes.items():
            index.delete(self.schema.value(old, field), rid)
        for field, hash_index in self.hash_indexes.items():
            hash_index.delete(self.schema.value(old, field), rid)
        return old

    def update(self, rid: RID, new_row: Row) -> Row:
        """In-place update; index entries move only for changed fields."""
        new_row = self.schema.make_row(new_row)
        old = self.heap.update(rid, new_row)
        for field, index in self.btree_indexes.items():
            old_key = self.schema.value(old, field)
            new_key = self.schema.value(new_row, field)
            if old_key != new_key:
                index.delete(old_key, rid)
                index.insert(new_key, rid)
        for field, hash_index in self.hash_indexes.items():
            old_key = self.schema.value(old, field)
            new_key = self.schema.value(new_row, field)
            if old_key != new_key:
                hash_index.delete(old_key, rid)
                hash_index.insert(new_key, rid)
        return old

    def update_clustered(self, rid: RID, new_row: Row, cluster_field: str) -> tuple[Row, RID]:
        """In-place update that preserves clustering on ``cluster_field``.

        When the clustering key is unchanged this is a plain in-place
        update. When it changes, the tuple is deleted and re-inserted on a
        page holding its new key neighbours (found through the B-tree on
        ``cluster_field``), the way an index-organised table moves records.
        Returns ``(old_row, new_rid)``.
        """
        new_row = self.schema.make_row(new_row)
        pos = self.schema.index_of(cluster_field)
        old_peek = self.heap.read(rid)
        if old_peek[pos] == new_row[pos]:
            old = self.update(rid, new_row)
            return old, rid
        index = self.btree_indexes.get(cluster_field)
        old = self.delete(rid)
        preferred = None
        if index is not None:
            # Prefer the page of the first key at-or-above the new key,
            # falling back to the nearest key below it.
            for _key, neighbor_rid in index.range_scan(new_row[pos], None):
                preferred = neighbor_rid.page_no
                break
            if preferred is None:
                floor = index.floor_entry(new_row[pos])
                if floor is not None:
                    preferred = floor[1].page_no
        if preferred is None:
            new_rid = self.heap.insert(new_row)
        else:
            new_rid = self.heap.insert_near(new_row, preferred)
        for field, btree in self.btree_indexes.items():
            btree.insert(self.schema.value(new_row, field), new_rid)
        for field, hash_index in self.hash_indexes.items():
            hash_index.insert(self.schema.value(new_row, field), new_rid)
        return old, new_rid

    # -- access --------------------------------------------------------------

    def read(self, rid: RID) -> Row:
        return self.heap.read(rid)

    def scan(self) -> Iterator[tuple[RID, Row]]:
        return self.heap.scan()

    def fetch_batched(self, rids: list[RID]) -> list[tuple[RID, Row]]:
        """Fetch many RIDs reading each distinct page once.

        This is the standard RID-sort optimisation; it makes measured page
        counts match the Yao-function expectation the paper uses for batched
        index probes.
        """
        by_page: dict[int, list[RID]] = {}
        for rid in rids:
            by_page.setdefault(rid.page_no, []).append(rid)
        out: list[tuple[RID, Row]] = []
        for page_no in sorted(by_page):
            page = self.heap.buffer.fetch(self.name, page_no)
            for rid in by_page[page_no]:
                out.append((rid, page.read(rid.slot_no)))
        return out

    @property
    def num_rows(self) -> int:
        return self.heap.num_rows

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Relation({self.name}, rows={self.num_rows})"


class Catalog:
    """Name -> :class:`Relation` resolution plus creation."""

    def __init__(self, buffer: BufferPool) -> None:
        self.buffer = buffer
        self._relations: dict[str, Relation] = {}

    def create_relation(
        self, name: str, schema: Schema, fill_factor: float = 1.0
    ) -> Relation:
        """Create and register an empty relation."""
        if name in self._relations:
            raise ValueError(f"relation {name!r} already exists")
        relation = Relation(name, schema, self.buffer, fill_factor=fill_factor)
        self._relations[name] = relation
        return relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> list[str]:
        return sorted(self._relations)
