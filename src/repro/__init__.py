"""repro — reproduction of Eric N. Hanson, "Processing Queries Against
Database Procedures: A Performance Analysis" (SIGMOD 1988 / UCB ERL M87/68).

Two layers reproduce the paper:

- :mod:`repro.model` — the paper's closed-form cost model: every formula of
  §4 (model 1, two-way joins) and §6 (model 2, three-way joins), the
  Yao/Cardenas page estimator, and the winner-region computations. This
  regenerates every figure exactly as the paper computed it.
- the executable simulator — a from-scratch relational substrate
  (:mod:`repro.storage`, :mod:`repro.query`), a Rete network
  (:mod:`repro.rete`), i-locks (:mod:`repro.locks`), the four strategies
  (:mod:`repro.core`), and a synthetic workload driver
  (:mod:`repro.workload`) measuring the same metric on a simulated cost
  clock.

Quickstart::

    from repro import ModelParams, strategy_costs, run_workload

    params = ModelParams()  # the paper's Figure 2 defaults
    print({k: v.total_ms for k, v in strategy_costs(params, model=1).items()})

    result = run_workload(
        params.replace(n_tuples=10_000, num_p1=25, num_p2=25),
        "cache_invalidate", num_operations=400,
    )
    print(result.cost_per_access_ms)

See also ``python -m repro all`` (regenerate every figure) and
EXPERIMENTS.md (paper-vs-reproduction record).
"""

from repro.core import (
    STRATEGY_CLASSES,
    AlwaysRecompute,
    CacheAndInvalidate,
    DatabaseProcedure,
    ProcedureManager,
    UpdateCacheAVM,
    UpdateCacheRVM,
)
from repro.experiments import REGISTRY, render_result, run_experiment
from repro.model import (
    DEFAULT_PARAMS,
    ModelParams,
    cost_of,
    strategy_costs,
    sweep_sharing_factor,
    sweep_update_probability,
    winner_grid,
    yao,
)
from repro.query.parser import parse_retrieve
from repro.workload import (
    build_database,
    build_procedures,
    run_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analytical model
    "ModelParams",
    "DEFAULT_PARAMS",
    "cost_of",
    "strategy_costs",
    "sweep_update_probability",
    "sweep_sharing_factor",
    "winner_grid",
    "yao",
    # strategies
    "STRATEGY_CLASSES",
    "AlwaysRecompute",
    "CacheAndInvalidate",
    "UpdateCacheAVM",
    "UpdateCacheRVM",
    "DatabaseProcedure",
    "ProcedureManager",
    "parse_retrieve",
    # workload & experiments
    "build_database",
    "build_procedures",
    "run_workload",
    "REGISTRY",
    "run_experiment",
    "render_result",
]
