"""The strategy interface.

A strategy owns everything procedure-specific: compiled plans, caches,
maintenance structures. The manager calls :meth:`define` once per procedure,
:meth:`access` per read, and :meth:`on_update` after each base-relation
update transaction has been applied to the heap (so strategies observe the
post-update database plus the explicit old/new row lists).

All costs a strategy incurs flow through the shared clock; the manager
attributes them by snapshotting around these calls.
"""

from __future__ import annotations

import abc
import enum
from typing import TYPE_CHECKING

from repro.core.procedure import DatabaseProcedure
from repro.sim import CostClock
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.tuples import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.batch import DeltaBatch


class StrategyName(str, enum.Enum):
    """Canonical strategy identifiers used across benches and reports."""

    ALWAYS_RECOMPUTE = "always_recompute"
    CACHE_INVALIDATE = "cache_invalidate"
    UPDATE_CACHE_AVM = "update_cache_avm"
    UPDATE_CACHE_RVM = "update_cache_rvm"
    HYBRID = "hybrid"

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.value


class ProcedureStrategy(abc.ABC):
    """Base class for the four query-processing strategies."""

    strategy_name: StrategyName

    def __init__(
        self, catalog: Catalog, buffer: BufferPool, clock: CostClock
    ) -> None:
        self.catalog = catalog
        self.buffer = buffer
        self.clock = clock
        self.procedures: dict[str, DatabaseProcedure] = {}

    def define(self, procedure: DatabaseProcedure) -> None:
        """Register ``procedure`` (already bound to the catalog) and build
        whatever per-procedure state the strategy needs. Definition-time
        work is a one-time cost the paper excludes from the per-access
        analysis; implementations must not charge the clock here."""
        if procedure.name in self.procedures:
            raise ValueError(f"procedure {procedure.name!r} already defined")
        self.procedures[procedure.name] = procedure
        self._after_define(procedure)

    @abc.abstractmethod
    def _after_define(self, procedure: DatabaseProcedure) -> None:
        """Strategy-specific definition work."""

    @abc.abstractmethod
    def access(self, name: str) -> list[Row]:
        """Return the procedure's current value, charging the clock."""

    @abc.abstractmethod
    def on_update(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        """React to an applied update transaction (new rows ``inserts``
        replaced old rows ``deletes`` in place), charging the clock for any
        maintenance work."""

    def on_update_batch(self, batch: "DeltaBatch") -> None:
        """React to a group of applied update transactions against one
        relation (see :class:`repro.core.batch.DeltaBatch`).

        The default replays the batch transaction by transaction through
        :meth:`on_update` — cost- and state-identical to the unbatched
        pipeline at every batch size. Strategies override this to exploit
        the group: merged i-lock sweeps, whole-delta-set algebra, or
        set-at-a-time token propagation. Overrides must preserve the
        contract that a single-transaction batch is bit-identical to one
        :meth:`on_update` call.
        """
        for inserts, deletes in batch.transactions:
            self.on_update(batch.relation, inserts, deletes)

    # -- fault recovery (see repro.faults.supervisor) ----------------------

    def repair_procedure(self, name: str, full_rows: list[Row]) -> None:
        """Restore ``name``'s cached state from ``full_rows`` — a freshly
        recomputed, *unprojected* result the supervisor already charged.
        Default: nothing cached, nothing to repair (Always Recompute)."""

    def recover_after_crash(self) -> list[str]:
        """Rebuild volatile state after a simulated crash; the caller has
        quiesced fault injection and charges everything here under the
        ``fault.recovery`` phase. Returns the procedure names whose cached
        values still need a recompute-repair (the supervisor performs
        those). Default: nothing volatile, nothing dirty."""
        return []

    def space_pages(self) -> int:
        """Disk pages the strategy's caches/memories currently occupy.

        The paper's analysis costs only time; this exposes the space axis:
        Always Recompute stores nothing, Cache and Invalidate and AVM store
        one copy per procedure, and RVM's sharing means a shared
        subexpression's pages are counted once however many procedures use
        it.
        """
        return 0

    def _procedure(self, name: str) -> DatabaseProcedure:
        try:
            return self.procedures[name]
        except KeyError:
            raise KeyError(f"no procedure named {name!r}") from None
