"""Incrementally maintained aggregates over procedure results (extension).

The paper's introduction lists "aggregation and generalization [SmS77]"
among the features database procedures support, and §8 notes the Update
Cache machinery doubles as "a materialized view facility". This module
closes that loop for aggregate views: a :class:`GroupedAggregate`
subscribes to a procedure's maintenance deltas (via
:meth:`repro.core.UpdateCacheAVM.add_delta_observer`) and keeps per-group
COUNT / SUM / AVG current without ever rescanning the result.

COUNT, SUM, and AVG are *self-maintainable* under both inserts and deletes
(the delta algebra is a group abelian sum); MIN/MAX are not — a deleted
minimum requires a rescan — and are deliberately not offered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.storage.tuples import Row, Schema

_KINDS = ("count", "sum", "avg")

GLOBAL_GROUP = "<all>"
"""Group key used when no group field is given (a single global group)."""


@dataclass
class _GroupState:
    count: int = 0
    total: float = 0.0


class GroupedAggregate:
    """A per-group COUNT/SUM/AVG over a stream of row deltas.

    Args:
        schema: schema of the (full, unprojected) result rows.
        kind: ``"count"``, ``"sum"``, or ``"avg"``.
        value_field: the numeric field aggregated (required for sum/avg).
        group_field: group-by field; ``None`` aggregates everything into
            :data:`GLOBAL_GROUP`.
    """

    def __init__(
        self,
        schema: Schema,
        kind: str,
        value_field: Optional[str] = None,
        group_field: Optional[str] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(
                f"unsupported aggregate {kind!r}; supported: {_KINDS} "
                "(MIN/MAX are not self-maintainable under deletes)"
            )
        if kind in ("sum", "avg") and value_field is None:
            raise ValueError(f"{kind} needs a value_field")
        self.schema = schema
        self.kind = kind
        self._value_pos = (
            schema.index_of(value_field) if value_field is not None else None
        )
        self._group_pos = (
            schema.index_of(group_field) if group_field is not None else None
        )
        self._groups: dict[Any, _GroupState] = {}

    # -- maintenance -------------------------------------------------------

    def _group_of(self, row: Row) -> Any:
        if self._group_pos is None:
            return GLOBAL_GROUP
        return row[self._group_pos]

    def rebuild(self, rows: Iterable[Row]) -> None:
        """Initialise from a full result (definition time)."""
        self._groups.clear()
        self.apply(inserts=rows, deletes=())

    def apply(self, inserts: Iterable[Row], deletes: Iterable[Row]) -> None:
        """Fold one maintenance delta into the groups."""
        for row, sign in ((r, +1) for r in inserts):
            self._fold(row, sign)
        for row in deletes:
            self._fold(row, -1)

    def _fold(self, row: Row, sign: int) -> None:
        state = self._groups.setdefault(self._group_of(row), _GroupState())
        state.count += sign
        if self._value_pos is not None:
            state.total += sign * row[self._value_pos]
        if state.count < 0:
            raise ValueError(
                "aggregate drift: more deletes than inserts for a group"
            )
        if state.count == 0:
            del self._groups[self._group_of(row)]

    # -- reads ------------------------------------------------------------

    def groups(self) -> list[Any]:
        return sorted(self._groups, key=repr)

    def value(self, group: Any = GLOBAL_GROUP) -> float:
        """The aggregate for one group (0 for count/sum of empty groups;
        raises for avg of an empty group)."""
        state = self._groups.get(group)
        if self.kind == "count":
            return state.count if state else 0
        if self.kind == "sum":
            return state.total if state else 0.0
        if state is None or state.count == 0:
            raise ZeroDivisionError(f"avg of empty group {group!r}")
        return state.total / state.count

    def results(self) -> dict[Any, float]:
        """All group values."""
        return {group: self.value(group) for group in self._groups}
