"""Database procedures.

A database procedure is "a collection of query language statements stored in
a field of a record" — here, as in the paper's models, a single ``retrieve``
query. The paper's two procedure types are selections (P1) and joins (P2);
:class:`ProcedureKind` classifies a normalised query accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.query.analysis import SPJQuery, normalize_spj
from repro.query.expr import Expression
from repro.storage.catalog import Catalog


class ProcedureKind(enum.Enum):
    """The paper's procedure taxonomy."""

    P1 = "P1"  # single-relation selection
    P2 = "P2"  # join query (2-way in model 1, 3-way in model 2)

    @staticmethod
    def of(query: SPJQuery) -> "ProcedureKind":
        return ProcedureKind.P2 if query.joins else ProcedureKind.P1


@dataclass
class DatabaseProcedure:
    """A named stored query plus its normalised form.

    Attributes:
        name: unique procedure identifier.
        expression: the logical query as written.
        query: the strategy-neutral normal form every strategy compiles from.
    """

    name: str
    expression: Expression
    query: SPJQuery = field(init=False, repr=False)

    def bind(self, catalog: Catalog) -> "DatabaseProcedure":
        """Normalise against ``catalog`` (called once at definition)."""
        self.query = normalize_spj(self.expression, catalog)
        return self

    @property
    def kind(self) -> ProcedureKind:
        return ProcedureKind.of(self.query)

    @property
    def driver_relation(self) -> str:
        return self.query.relations[0]

    def combined_schema(self, catalog: Catalog):
        """Schema of unprojected result rows (member relations' schemas
        concatenated in join order)."""
        schema = catalog.get(self.query.relations[0]).schema
        for edge in self.query.joins:
            schema = schema.concat(catalog.get(edge.inner_relation).schema)
        return schema

    def project_rows(self, rows: list, catalog: Catalog) -> list:
        """Apply the procedure's projection (if any) to full result rows.

        Maintenance layers (AVM stores, Rete memories) keep full rows so
        deleted tuples stay identifiable; projection is applied here, at
        access time.
        """
        if self.query.projection is None:
            return rows
        schema = self.combined_schema(catalog)
        positions = [schema.index_of(name) for name in self.query.projection]
        return [tuple(row[pos] for pos in positions) for row in rows]
