"""Batched update propagation: the ``DeltaBatch`` carried from the
workload layer into the strategies.

A :class:`DeltaBatch` groups consecutive update *transactions* against one
relation. Base-relation changes are applied eagerly, transaction by
transaction (heap costs and rid bookkeeping are strategy-independent and
order-sensitive); only the *maintenance* reaction — i-lock probing, delta
joins, Rete token propagation — is deferred and executed once per batch via
:meth:`repro.core.strategy.ProcedureStrategy.on_update_batch`.

Equivalence argument (why batching cannot change results):

- **Cache and Invalidate**: validity is monotone between accesses, so the
  set of procedures newly invalidated by a batch is exactly the union of
  the per-transaction conflict sets — probing the merged value set once
  flags the same procedures at the same per-procedure recording cost.
- **AVM / RVM**: join is linear over multiset sums while the other member
  relations are static (guaranteed: a batch never spans relations, and a
  flush precedes every access), so propagating the *net* of a batch's
  deltas produces the same multiset contents as propagating each
  transaction's deltas in order.

Net deltas are only formed for multi-transaction batches: a single
transaction replays through the legacy one-at-a-time path so that
``batch_size=1`` stays bit-identical to the unbatched pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.storage.tuples import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import ProcedureManager
    from repro.locks.ilocks import SortedValueRuns


def net_deltas(
    transactions: list[tuple[list[Row], list[Row]]],
) -> tuple[list[Row], list[Row]]:
    """Multiset-net a sequence of ``(inserts, deletes)`` transactions.

    A delete that cancels an insert made *earlier in the same batch* drops
    both (the row never needs to reach any maintenance structure); every
    other row passes through in first-seen order. The returned deletes are
    therefore guaranteed to exist in the pre-batch state, which is what
    :meth:`repro.storage.matstore.MaterializedStore.apply_delta` requires.
    """
    inserts: list[Row] = []
    deletes: list[Row] = []
    pending: dict[Row, int] = {}
    for txn_inserts, txn_deletes in transactions:
        # Deletes first, mirroring apply_delta's within-transaction order.
        for row in txn_deletes:
            count = pending.get(row, 0)
            if count > 0:
                pending[row] = count - 1
                inserts.remove(row)
            else:
                deletes.append(row)
        for row in txn_inserts:
            inserts.append(row)
            pending[row] = pending.get(row, 0) + 1
    return inserts, deletes


class DeltaBatch:
    """An ordered group of update transactions against one relation."""

    def __init__(self, relation: str) -> None:
        self.relation = relation
        self.transactions: list[tuple[list[Row], list[Row]]] = []
        self._runs_cache: dict[tuple[str, ...], "SortedValueRuns"] = {}

    def add_transaction(
        self, inserts: list[Row], deletes: list[Row]
    ) -> None:
        """Append one applied transaction's explicit old/new row lists."""
        self.transactions.append((list(inserts), list(deletes)))

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)

    @property
    def num_tuples(self) -> int:
        """Raw delta rows across the batch (before netting)."""
        return sum(
            len(ins) + len(dels) for ins, dels in self.transactions
        )

    def merged(self) -> tuple[list[Row], list[Row]]:
        """All inserts and deletes concatenated, un-netted."""
        inserts: list[Row] = []
        deletes: list[Row] = []
        for txn_inserts, txn_deletes in self.transactions:
            inserts.extend(txn_inserts)
            deletes.extend(txn_deletes)
        return inserts, deletes

    def netted(self) -> tuple[list[Row], list[Row]]:
        """The batch's net ``(inserts, deletes)`` (see :func:`net_deltas`)."""
        return net_deltas(self.transactions)

    def changed_dicts(self, field_names: list[str]) -> list[dict[str, Any]]:
        """Every old/new tuple value as a field dict, un-netted, in the
        order the transactions produced them (the paper's ``2l`` values per
        transaction). Netting here would be wrong: an intermediate value
        that existed between two transactions still broke any i-lock whose
        range covered it."""
        out: list[dict[str, Any]] = []
        for txn_inserts, txn_deletes in self.transactions:
            for row in txn_deletes:
                out.append(dict(zip(field_names, row)))
            for row in txn_inserts:
                out.append(dict(zip(field_names, row)))
        return out

    def sorted_value_runs(
        self, field_names: list[str]
    ) -> "SortedValueRuns":
        """The batch's changed values as memoized per-field sorted runs
        (see :class:`repro.locks.ilocks.SortedValueRuns`). However many
        consumers probe the batch — one i-lock table per shard, the
        shard router — the O(n log n) build happens once. Callers must
        not add transactions after the first probe (the runner flushes a
        batch exactly once, after its last transaction)."""
        key = tuple(field_names)
        runs = self._runs_cache.get(key)
        if runs is None:
            from repro.locks.ilocks import SortedValueRuns

            runs = SortedValueRuns(self.changed_dicts(field_names))
            self._runs_cache[key] = runs
        return runs

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"DeltaBatch({self.relation}, txns={self.num_transactions}, "
            f"tuples={self.num_tuples})"
        )


class BatchAccumulator:
    """Groups update transactions into :class:`DeltaBatch` flushes.

    Used where the operation stream is not known ahead of time (the
    concurrent engine, whose sessions interleave); the serial runner plans
    its batches from the generated stream instead (:func:`repro.workload.
    generator.coalesced_update_runs`). Base changes apply eagerly through
    :meth:`ProcedureManager.update_deferred`; maintenance flushes when the
    batch fills, when an update targets a different relation, or when the
    caller forces a flush (before any procedure access, so reads always
    see fully maintained caches).
    """

    def __init__(self, manager: "ProcedureManager", batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.manager = manager
        self.batch_size = batch_size
        self._batch: DeltaBatch | None = None
        #: Completed flushes and the transactions they carried (diagnostics).
        self.flushes = 0
        self.flushed_transactions = 0

    @property
    def pending_transactions(self) -> int:
        return self._batch.num_transactions if self._batch else 0

    def add(
        self,
        relation: str,
        changes: list,
        cluster_field: str | None = None,
    ) -> None:
        """Apply one update transaction's base changes now and enqueue its
        maintenance; may trigger a flush (different relation, full batch)."""
        if self._batch is not None and self._batch.relation != relation:
            self.flush()
        inserts, deletes = self.manager.update_deferred(
            relation, changes, cluster_field=cluster_field
        )
        if self._batch is None:
            self._batch = DeltaBatch(relation)
        self._batch.add_transaction(inserts, deletes)
        if self._batch.num_transactions >= self.batch_size:
            self.flush()

    def flush(self) -> float:
        """Run deferred maintenance for the pending batch; returns the
        simulated ms charged (0.0 when nothing was pending)."""
        batch = self._batch
        self._batch = None
        if batch is None or not batch.transactions:
            return 0.0
        self.flushes += 1
        self.flushed_transactions += batch.num_transactions
        return self.manager.maintain_batch(batch)
