"""The Always Recompute strategy.

The conventional algorithm: compile an optimized plan once at definition
time, execute it on every access, do nothing on updates. Per-access cost is
the paper's ``TOT_Recompute = C_ProcessQuery``.
"""

from __future__ import annotations

from repro.core.procedure import DatabaseProcedure
from repro.core.strategy import ProcedureStrategy, StrategyName
from repro.query.executor import ExecutionContext
from repro.query.optimizer import Optimizer
from repro.query.plan import Plan
from repro.sim import CostClock
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.tuples import Row


class AlwaysRecompute(ProcedureStrategy):
    """Recompute the procedure result from base relations on every access."""

    strategy_name = StrategyName.ALWAYS_RECOMPUTE

    def __init__(
        self, catalog: Catalog, buffer: BufferPool, clock: CostClock
    ) -> None:
        super().__init__(catalog, buffer, clock)
        self._optimizer = Optimizer(catalog)
        self._plans: dict[str, Plan] = {}

    def _after_define(self, procedure: DatabaseProcedure) -> None:
        self._plans[procedure.name] = self._optimizer.compile_normalized(
            procedure.query
        )

    def plan_of(self, name: str) -> Plan:
        """The stored precompiled plan (for inspection and tests)."""
        return self._plans[name]

    def access(self, name: str) -> list[Row]:
        self._procedure(name)
        ctx = ExecutionContext(catalog=self.catalog, clock=self.clock)
        tracer = self.clock.tracer
        if tracer is None:
            return self._plans[name].execute(ctx)
        # Recompute charges keep their natural phases (io.read /
        # predicate.test); the span only credits them to the procedure.
        with tracer.span(None, procedure=name):
            return self._plans[name].execute(ctx)

    def on_update(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        """No per-update work: results are never materialised."""
