"""Update Cache with Rete view maintenance (shared).

One :class:`repro.rete.ReteNetwork` maintains every procedure's value.
Because the network hash-conses structurally identical subnetworks, a type
P1 procedure's α-memory doubles as the shared left input of every type P2
procedure with the same ``C_f(R1)`` — the paper's sharing factor ``SF``
emerges from the procedure population rather than being a knob here.

Per update, only the changed tuples inside some condition's interval are
screened (once per *distinct* condition — the sharing saving), shared
α-memories are refreshed once, and each P2's top and-node probes its
precomputed right memory (an α-memory in model 1, the ``σ_Cf2(R2) ⋈ R3``
β-memory in model 2 — the reason RVM beats AVM on three-way joins).
Accessing a procedure reads its terminal memory (``C2 * ProcSize``).
"""

from __future__ import annotations

from repro.core.batch import DeltaBatch
from repro.core.procedure import DatabaseProcedure
from repro.core.strategy import ProcedureStrategy, StrategyName
from repro.rete import ReteNetwork
from repro.sim import CostClock
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.tuples import Row


class UpdateCacheRVM(ProcedureStrategy):
    """Shared differential maintenance via a Rete network.

    Args:
        result_tuple_bytes: assumed width of memory-node tuples (the paper's
            ``S``); ``None`` uses the honest concatenated width.
    """

    strategy_name = StrategyName.UPDATE_CACHE_RVM

    def __init__(
        self,
        catalog: Catalog,
        buffer: BufferPool,
        clock: CostClock,
        result_tuple_bytes: int | None = None,
    ) -> None:
        super().__init__(catalog, buffer, clock)
        self.network = ReteNetwork(
            catalog, buffer, clock, result_tuple_bytes=result_tuple_bytes
        )

    def _after_define(self, procedure: DatabaseProcedure) -> None:
        self.network.add_procedure(procedure.name, procedure.query)

    def access(self, name: str) -> list[Row]:
        procedure = self._procedure(name)
        tracer = self.clock.tracer
        if tracer is None:
            rows = self.network.read_result(name)
        else:
            with tracer.span("cache.read", procedure=name):
                rows = self.network.read_result(name)
        return procedure.project_rows(rows, self.catalog)

    def on_update(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        self.network.apply_update(relation, inserts, deletes)

    def on_update_batch(self, batch: DeltaBatch) -> None:
        """Propagate the batch as one set-at-a-time token wave: the net
        delta set is tokenised once, each t-const node screens its routed
        tokens in one activation, and each α/β memory applies its whole
        token batch with page-deduplicated I/O — per-node, not per-tuple,
        work (correct by the same linearity argument as AVM; single
        transactions replay the legacy path for bit-identity)."""
        if batch.num_transactions <= 1:
            super().on_update_batch(batch)
            return
        self.network.apply_update_batch(batch.relation, batch.transactions)

    # -- fault recovery -----------------------------------------------------

    def repair_procedure(self, name: str, full_rows: list[Row]) -> None:
        """Refresh the terminal memory from a supervisor-recomputed value.
        Shared memories are refreshed with the same correct content every
        sharer would compute, so repairs never diverge."""
        self.network.result_memory(name).store.refresh(full_rows)

    def recover_after_crash(self) -> list[str]:
        """Rebuild the whole network from the current base relations.

        A crash may have interrupted token propagation anywhere, leaving
        *intermediate* α/β-memories inconsistent — repairing only terminal
        memories would let the next update propagate garbage. Dropping the
        memory files and recompiling every procedure reinitialises all
        memories (including shared ones) from base truth; the charge is
        one scan of each member relation plus one write per rebuilt memory
        page. Terminal memories come out correct, so nothing stays dirty."""
        disk = self.buffer.disk
        old = self.network
        for store in old.memory_stores():
            self.buffer.invalidate_file(store.name)
            disk.drop_file(store.name)
        self.network = ReteNetwork(
            self.catalog,
            self.buffer,
            self.clock,
            result_tuple_bytes=old.result_tuple_bytes,
        )
        relations: set[str] = set()
        for name, procedure in self.procedures.items():
            self.network.add_procedure(name, procedure.query)
            relations.update(procedure.query.relations)
        self.clock.charge_read(
            sum(self.catalog.get(rel).heap.num_pages for rel in sorted(relations))
        )
        self.clock.charge_write(self.network.total_memory_pages())
        return []

    def sharing_report(self) -> dict[str, int]:
        """Node counts and how many are shared (diagnostics for SF sweeps)."""
        return self.network.sharing_report()

    def space_pages(self) -> int:
        return self.network.total_memory_pages()
