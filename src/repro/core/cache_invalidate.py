"""The Cache and Invalidate strategy.

Each procedure keeps a cached copy of its last computed value plus a set of
i-locks describing everything the computation read. Accessing a *valid*
cache reads the stored pages (``T2 = C2 * ProcSize``); accessing an
*invalid* one recomputes via the stored plan, refreshes the cache
(``T1 = C_ProcessQuery + 2 * C2 * ProcSize``), and re-arms the i-locks.
Updates that break an i-lock mark the procedure invalid at a recording cost
of ``C_inval`` per invalidated procedure (the paper's ``T3`` component;
0 with battery-backed RAM, two I/Os — 60 ms — with the naive flag-on-page
scheme).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.batch import DeltaBatch
from repro.core.procedure import DatabaseProcedure
from repro.core.strategy import ProcedureStrategy, StrategyName
from repro.locks import ILockTable
from repro.query.executor import execute_plan
from repro.query.optimizer import Optimizer
from repro.query.plan import Plan
from repro.sim import CostClock
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.columnar import ColumnBatch, columnar_enabled
from repro.storage.matstore import MaterializedStore
from repro.storage.tuples import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.schemes import InvalidationScheme


class CacheAndInvalidate(ProcedureStrategy):
    """Cache procedure values; invalidate via rule indexing (i-locks).

    Args:
        c_inval: milliseconds charged to record one procedure invalidation
            (the paper's ``C_inval``).
        result_tuple_bytes: assumed width of cached result tuples; the paper
            fixes this at the base ``S`` regardless of join arity. ``None``
            uses the honest concatenated width.
    """

    strategy_name = StrategyName.CACHE_INVALIDATE

    def __init__(
        self,
        catalog: Catalog,
        buffer: BufferPool,
        clock: CostClock,
        c_inval: float = 0.0,
        result_tuple_bytes: int | None = None,
        scheme: "InvalidationScheme | None" = None,
    ) -> None:
        """``scheme`` selects the durable invalidation-recording design
        (battery / page-flag / WAL; see :mod:`repro.recovery`). When
        ``None``, validity lives in a plain dict and each invalidation
        charges the flat ``c_inval`` — the knob the paper's model uses.
        ``c_inval`` is ignored when a scheme is given (the scheme charges
        its own costs)."""
        super().__init__(catalog, buffer, clock)
        if c_inval < 0:
            raise ValueError("c_inval must be >= 0")
        self.c_inval = c_inval
        self.result_tuple_bytes = result_tuple_bytes
        self.scheme = scheme
        self._optimizer = Optimizer(catalog)
        self._plans: dict[str, Plan] = {}
        self._caches: dict[str, MaterializedStore] = {}
        self._valid: dict[str, bool] = {}
        self._locks = ILockTable()
        self.invalidation_count = 0
        self.false_invalidation_count = 0

    # -- definition ------------------------------------------------------------

    def _after_define(self, procedure: DatabaseProcedure) -> None:
        plan = self._optimizer.compile_normalized(procedure.query)
        self._plans[procedure.name] = plan
        ctx_schema = self._result_schema(plan)
        self._caches[procedure.name] = MaterializedStore(
            f"cache.{procedure.name}",
            ctx_schema,
            self.buffer,
            seed=len(self._caches),
        )
        if self.scheme is not None:
            self.scheme.register(procedure.name)
        self._valid[procedure.name] = False  # first access fills the cache

    def _result_schema(self, plan: Plan) -> Schema:
        from repro.query.executor import ExecutionContext

        ctx = ExecutionContext(catalog=self.catalog, clock=self.clock)
        schema = plan.output_schema(ctx)
        if self.result_tuple_bytes is not None:
            schema = Schema(schema.fields, tuple_bytes=self.result_tuple_bytes)
        return schema

    # -- access ------------------------------------------------------------------

    def is_valid(self, name: str) -> bool:
        if self.scheme is not None:
            return self.scheme.is_valid(name)
        return self._valid[name]

    def access(self, name: str) -> list[Row]:
        self._procedure(name)
        tracer = self.clock.tracer
        if self.is_valid(name):
            if tracer is None:
                return self._caches[name].read_all()
            tracer.event("proc.cache.hit")
            with tracer.span("cache.read", procedure=name):
                return self._caches[name].read_all()
        if tracer is not None:
            tracer.event("proc.cache.miss")
        result = execute_plan(
            self._plans[name],
            self.catalog,
            self.clock,
            collect_locks=True,
            procedure=name,
        )
        if tracer is None:
            self._caches[name].refresh(result.rows)
        else:
            with tracer.span("cache.refresh", procedure=name):
                self._caches[name].refresh(result.rows)
        self._locks.set_locks(name, result.locks)
        if self.scheme is not None:
            self.scheme.mark_valid(name)
        else:
            self._valid[name] = True
        return result.rows

    # -- maintenance ----------------------------------------------------------------

    def on_update(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        """Break i-locks: every procedure whose locked ranges cover an old
        or new tuple value is marked invalid (``C_inval`` each)."""
        tracer = self.clock.tracer
        if tracer is None:
            self._break_locks(relation, inserts, deletes)
            return
        with tracer.span("ilock.check"):
            self._break_locks(relation, inserts, deletes)

    def _break_locks(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        schema = self.catalog.get(relation).schema
        if columnar_enabled():
            batch = ColumnBatch(schema, deletes + inserts)
            broken = self._locks.conflicting_procedures_batch(relation, batch)
        else:
            names = schema.names()
            changed = [dict(zip(names, row)) for row in deletes + inserts]
            broken = self._locks.conflicting_procedures(relation, changed)
        tracer = self.clock.tracer
        for name in broken:
            if not self.is_valid(name):
                continue  # already invalid; nothing to record
            self.invalidation_count += 1
            if tracer is not None:
                tracer.event("ilock.invalidation")
            if self.scheme is not None:
                self.scheme.mark_invalid(name)
            else:
                self._valid[name] = False
                if self.c_inval:
                    self.clock.charge_fixed(self.c_inval)

    def on_update_batch(self, batch: DeltaBatch) -> None:
        """Group invalidation: sweep the batch's merged (un-netted) write
        footprint over the i-lock table once instead of probing it per
        transaction.

        Validity is monotone between accesses (nothing revalidates inside
        a batch), so the procedures newly invalidated by the sweep are
        exactly those the per-transaction probes would have flagged, at
        the same per-procedure recording cost; durable schemes may
        additionally group-commit the records (one log force per batch).
        """
        if batch.num_transactions <= 1:
            super().on_update_batch(batch)  # bit-identical legacy path
            return
        tracer = self.clock.tracer
        if tracer is None:
            self._break_locks_grouped(batch)
            return
        with tracer.span("ilock.check"):
            self._break_locks_grouped(batch)

    def _break_locks_grouped(self, batch: DeltaBatch) -> None:
        names = self.catalog.get(batch.relation).schema.names()
        broken = self._locks.conflicting_procedures_swept(
            batch.relation, runs=batch.sorted_value_runs(names)
        )
        newly_invalid = sorted(
            name for name in broken if self.is_valid(name)
        )
        if not newly_invalid:
            return
        tracer = self.clock.tracer
        self.invalidation_count += len(newly_invalid)
        if tracer is not None:
            for _ in newly_invalid:
                tracer.event("ilock.invalidation")
        if self.scheme is not None:
            self.scheme.mark_invalid_group(newly_invalid)
            return
        for name in newly_invalid:
            self._valid[name] = False
        if self.c_inval:
            self.clock.charge_fixed(self.c_inval * len(newly_invalid))

    # -- fault recovery ----------------------------------------------------------------

    def repair_procedure(self, name: str, full_rows: list[Row]) -> None:
        """Refresh the cache from a supervisor-recomputed value and mark it
        valid again. The i-locks stay armed: the lock set is a static
        property of the plan, not of the cached contents."""
        procedure = self._procedure(name)
        rows = procedure.project_rows(full_rows, self.catalog)
        self._caches[name].refresh(rows)
        if self.scheme is not None:
            self.scheme.mark_valid(name)
        else:
            self._valid[name] = True

    def recover_after_crash(self) -> list[str]:
        """Recover the validity map per the configured scheme.

        WAL: replay checkpoint + surviving records (invalidations were
        forced, so recovered-valid caches are trustworthy — their pages
        are durable at buffer capacity 0). Battery/page-flag: durable by
        construction. No scheme: the plain dict is volatile, so every
        procedure conservatively recovers invalid (lazy recompute on next
        access). Nothing needs an eager repair in any case."""
        if self.scheme is None:
            for name in self._valid:
                self._valid[name] = False
        else:
            crash_and_recover = getattr(self.scheme, "crash_and_recover", None)
            if crash_and_recover is not None:
                crash_and_recover()
        return []

    # -- introspection -----------------------------------------------------------------

    def cache_of(self, name: str) -> MaterializedStore:
        return self._caches[name]

    def space_pages(self) -> int:
        return sum(cache.num_pages for cache in self._caches.values())

    def valid_fraction(self) -> float:
        """Fraction of defined procedures currently valid."""
        if not self.procedures:
            return 0.0
        valid = sum(1 for name in self.procedures if self.is_valid(name))
        return valid / len(self.procedures)
