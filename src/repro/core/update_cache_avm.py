"""Update Cache with algebraic view maintenance (non-shared).

Every procedure's materialised value is kept current at all times. After an
update transaction on a member relation, the strategy — *independently per
procedure*, with no subexpression sharing — does the paper's §4.3 work:

1. **screen**: the changed tuples falling inside the procedure's restriction
   interval are screened (``C1`` each; rule indexing spares out-of-interval
   tuples), and logged into the transaction's A/D delta sets (``C3`` each);
2. **delta join** (P2 only): screened tuples are joined to the remaining
   relations through their hash indexes (``C2 * Y2`` (+ ``Y7``) pages);
3. **refresh**: the resulting inserts/deletes are applied to the stored
   value, touching each affected page once (read + write;
   ``2 * C2 * y(n, m, 2fl)``).

Accessing a procedure just reads its stored value (``C2 * ProcSize``).
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import DeltaBatch
from repro.core.delta import DeltaJoiner
from repro.core.procedure import DatabaseProcedure
from repro.core.strategy import ProcedureStrategy, StrategyName
from repro.query.predicate import compiled_column_matcher
from repro.rete.discrimination import ConstantTestIndex
from repro.sim import CostClock
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.columnar import ColumnBatch, columnar_enabled
from repro.storage.matstore import MaterializedStore
from repro.storage.tuples import Row, Schema


class UpdateCacheAVM(ProcedureStrategy):
    """Non-shared differential maintenance of procedure values.

    Args:
        result_tuple_bytes: assumed width of materialised result tuples (the
            paper's ``S``); ``None`` uses the honest concatenated width.
    """

    strategy_name = StrategyName.UPDATE_CACHE_AVM

    def __init__(
        self,
        catalog: Catalog,
        buffer: BufferPool,
        clock: CostClock,
        result_tuple_bytes: int | None = None,
        delta_policy: str = "static",
        planning_cost_ms: float = 0.0,
    ) -> None:
        """``delta_policy``/``planning_cost_ms`` select static vs dynamic
        delta-join planning (see :class:`repro.core.delta.DeltaJoiner`)."""
        super().__init__(catalog, buffer, clock)
        self.result_tuple_bytes = result_tuple_bytes
        self.delta_policy = delta_policy
        self.planning_cost_ms = planning_cost_ms
        self._stores: dict[str, MaterializedStore] = {}
        self._joiners: dict[str, DeltaJoiner] = {}
        # proc name -> callbacks fed (inserts, deletes) after each refresh;
        # powers incrementally maintained aggregates (repro.core.aggregates).
        self._delta_observers: dict[str, list] = {}
        # (relation, interval) -> (procedure name, relation): one entry per
        # procedure per member relation — deliberately NOT hash-consed, this
        # is the non-shared algorithm.
        self._screen_index = ConstantTestIndex()

    # -- definition -------------------------------------------------------

    def _after_define(self, procedure: DatabaseProcedure) -> None:
        query = procedure.query
        joiner = DeltaJoiner(
            query,
            self.catalog,
            self.clock,
            policy=self.delta_policy,
            planning_cost_ms=self.planning_cost_ms,
        )
        self._joiners[procedure.name] = joiner

        # Materialise the initial value (definition-time, uncharged).
        rows = self._initial_value(procedure)
        schema = self._result_schema(procedure)
        store = MaterializedStore(
            f"avm.{procedure.name}", schema, self.buffer, seed=len(self._stores)
        )
        store.load_silently(rows)
        self._stores[procedure.name] = store

        # Register per-relation screening entries (rule indexing).
        for relation in query.relations:
            handle = (procedure.name, relation)
            restriction = query.restriction_of(relation)
            rel_schema = self.catalog.get(relation).schema
            interval = None
            for field in rel_schema.names():
                interval = restriction.interval_on(field)
                if interval is not None:
                    break
            if interval is not None:
                self._screen_index.add_interval(relation, interval, handle)
            else:
                self._screen_index.add_catch_all(relation, handle)

    def _result_schema(self, procedure: DatabaseProcedure) -> Schema:
        schema = self.catalog.get(procedure.query.relations[0]).schema
        for edge in procedure.query.joins:
            schema = schema.concat(self.catalog.get(edge.inner_relation).schema)
        if self.result_tuple_bytes is not None:
            schema = Schema(schema.fields, tuple_bytes=self.result_tuple_bytes)
        return schema

    def _initial_value(self, procedure: DatabaseProcedure) -> list[Row]:
        """Compute the definition-time contents without charging the clock
        (pure in-memory joins over uncharged scans)."""
        query = procedure.query
        driver = query.relations[0]
        rel = self.catalog.get(driver)
        matcher = query.restriction_of(driver).bind(rel.schema)
        parts = [
            {driver: row}
            for _rid, row in rel.heap.scan_uncharged()
            if matcher(row)
        ]
        for edge in query.joins:
            inner = self.catalog.get(edge.inner_relation)
            inner_matcher = query.restriction_of(edge.inner_relation).bind(
                inner.schema
            )
            inner_pos = inner.schema.index_of(edge.inner_field)
            by_key: dict = {}
            for _rid, row in inner.heap.scan_uncharged():
                if inner_matcher(row):
                    by_key.setdefault(row[inner_pos], []).append(row)
            outer_rel = next(
                name
                for name in query.relations
                if self.catalog.get(name).schema.has_field(edge.outer_field)
            )
            outer_pos = self.catalog.get(outer_rel).schema.index_of(
                edge.outer_field
            )
            extended = []
            for part in parts:
                for row in by_key.get(part[outer_rel][outer_pos], ()):
                    new_part = dict(part)
                    new_part[edge.inner_relation] = row
                    extended.append(new_part)
            parts = extended
        out: list[Row] = []
        for part in parts:
            combined: tuple = ()
            for relation in query.relations:
                combined = combined + part[relation]
            out.append(combined)
        return out

    # -- access -----------------------------------------------------------

    def access(self, name: str) -> list[Row]:
        procedure = self._procedure(name)
        tracer = self.clock.tracer
        if tracer is None:
            rows = self._stores[name].read_all()
        else:
            with tracer.span("cache.read", procedure=name):
                rows = self._stores[name].read_all()
        return procedure.project_rows(rows, self.catalog)

    def store_of(self, name: str) -> MaterializedStore:
        return self._stores[name]

    # -- fault recovery -----------------------------------------------------

    def repair_procedure(self, name: str, full_rows: list[Row]) -> None:
        self._stores[name].refresh(full_rows)

    def recover_after_crash(self) -> list[str]:
        """AVM keeps no validity metadata, so after a crash (which may have
        interrupted maintenance mid-propagation) every materialised value
        must conservatively be recompute-repaired — exactly the recovery
        cost the paper's validity-map designs exist to avoid."""
        return list(self.procedures)

    def space_pages(self) -> int:
        return sum(store.num_pages for store in self._stores.values())

    # -- maintenance --------------------------------------------------------

    def on_update(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        schema = self.catalog.get(relation).schema
        # Gather, per procedure, the screened delta rows (rule indexing
        # routes each changed value only to procedures whose restriction
        # interval contains it).
        if columnar_enabled():
            per_procedure = self._screen_batch(relation, schema, inserts, deletes)
        else:
            per_procedure = self._screen_rows(relation, schema, inserts, deletes)

        tracer = self.clock.tracer
        for proc_name, (del_rows, ins_rows) in per_procedure.items():
            if tracer is None:
                self._propagate(relation, proc_name, ins_rows, del_rows)
            else:
                # All per-procedure maintenance — delta join I/O, store
                # refresh, observer bookkeeping — is one phase.
                with tracer.span("delta.propagate", procedure=proc_name):
                    self._propagate(relation, proc_name, ins_rows, del_rows)

    def _screen_rows(
        self,
        relation: str,
        schema: Schema,
        inserts: list[Row],
        deletes: list[Row],
    ) -> dict[str, tuple[list[Row], list[Row]]]:
        """Scalar screening: probe the discrimination index per changed
        tuple, screening each candidate at ``C1`` + ``C3``."""
        names = schema.names()
        per_procedure: dict[str, tuple[list[Row], list[Row]]] = {}
        for rows, bucket in ((deletes, 0), (inserts, 1)):
            for row in rows:
                field_values = dict(zip(names, row))
                for handle in self._screen_index.candidates(relation, field_values):
                    proc_name, rel = handle  # type: ignore[misc]
                    if rel != relation:
                        continue
                    procedure = self.procedures[proc_name]
                    restriction = procedure.query.restriction_of(relation)
                    self.clock.charge_cpu(1)  # the screen itself
                    self.clock.charge_overhead(1)  # A/D set bookkeeping (C3)
                    if restriction.matches(row, schema):
                        entry = per_procedure.setdefault(proc_name, ([], []))
                        entry[bucket].append(row)
        return per_procedure

    def _screen_batch(
        self,
        relation: str,
        schema: Schema,
        inserts: list[Row],
        deletes: list[Row],
    ) -> dict[str, tuple[list[Row], list[Row]]]:
        """Columnar screening: one discrimination probe and one compiled
        restriction evaluation per candidate procedure, over the whole
        delta batch. Charges the same ``C1``/``C3`` totals as the scalar
        loop and builds ``per_procedure`` in the same order (first matching
        delta row, then candidate rank — the scalar loop's interleaving).
        """
        changed = deletes + inserts
        batch = ColumnBatch(schema, changed)
        boundary = len(deletes)
        matched: list[tuple[int, int, str, np.ndarray]] = []
        for rank, (handle, idx) in enumerate(
            self._screen_index.candidates_batch(relation, batch)
        ):
            proc_name, rel = handle  # type: ignore[misc]
            if rel != relation:
                continue
            procedure = self.procedures[proc_name]
            restriction = procedure.query.restriction_of(relation)
            count = len(idx)
            self.clock.charge_cpu(count)  # the screens themselves
            self.clock.charge_overhead(count)  # A/D set bookkeeping (C3)
            matcher = compiled_column_matcher(restriction, schema)
            hits = idx[matcher(batch.take(idx))]
            if len(hits):
                matched.append((int(hits[0]), rank, proc_name, hits))
        matched.sort(key=lambda item: (item[0], item[1]))
        per_procedure: dict[str, tuple[list[Row], list[Row]]] = {}
        for _first, _rank, proc_name, hits in matched:
            entry = per_procedure.setdefault(proc_name, ([], []))
            for index in hits:
                entry[0 if index < boundary else 1].append(changed[index])
        return per_procedure

    def _propagate(
        self,
        relation: str,
        proc_name: str,
        ins_rows: list[Row],
        del_rows: list[Row],
    ) -> None:
        joiner = self._joiners[proc_name]
        procedure = self.procedures[proc_name]
        if procedure.query.joins:
            ins_combined = joiner.compute(relation, ins_rows)
            del_combined = joiner.compute(relation, del_rows)
        else:
            ins_combined, del_combined = ins_rows, del_rows
        self._stores[proc_name].apply_delta(ins_combined, del_combined)
        observers = self._delta_observers.get(proc_name)
        if observers and (ins_combined or del_combined):
            # Observer bookkeeping costs C3 per delta tuple, like the
            # A/D set maintenance it extends.
            self.clock.charge_overhead(
                (len(ins_combined) + len(del_combined)) * len(observers)
            )
            for observer in observers:
                observer(ins_combined, del_combined)

    def on_update_batch(self, batch: DeltaBatch) -> None:
        """Evaluate the delta expressions once over the batch's *net*
        delta set: one screening pass, one delta join per procedure, one
        store refresh touching each affected page once.

        Valid by linearity of the join over multiset sums — the other
        member relations are static for the batch's duration (a batch
        never spans relations and a flush precedes every access) — and
        because screening is a per-row filter, which commutes with
        netting. Single-transaction batches replay the legacy path
        unchanged (bit-identity at ``batch_size=1``).
        """
        if batch.num_transactions <= 1:
            super().on_update_batch(batch)
            return
        inserts, deletes = batch.netted()
        self.on_update(batch.relation, inserts, deletes)

    def add_delta_observer(self, name: str, observer) -> None:
        """Subscribe ``observer(inserts, deletes)`` to ``name``'s
        maintenance deltas (full, unprojected rows). Used to keep derived
        structures — e.g. :class:`repro.core.aggregates.GroupedAggregate`
        — current without rescans."""
        self._procedure(name)
        self._delta_observers.setdefault(name, []).append(observer)

    def attach_aggregate(self, name: str, aggregate) -> None:
        """Wire a :class:`GroupedAggregate` to ``name``: initialise it from
        the current materialised value (definition-time, uncharged) and
        keep it maintained by the delta stream."""
        aggregate.rebuild(self._stores[name].peek_all())
        self.add_delta_observer(name, aggregate.apply)
