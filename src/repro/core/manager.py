"""The procedure manager: one strategy bound to one database.

Routes definitions, accesses, and update transactions, and attributes the
simulated cost of each call to the buckets the paper's metric needs:

- ``access``   — cost of reads of procedure values (strategy-dependent);
- ``maintain`` — per-update strategy work (screening, delta joins,
  refreshes, invalidations);
- ``base``     — the cost of applying the update to the base relation and
  its indexes, which is identical for every strategy and therefore
  *excluded* from the paper's per-access comparisons.

The paper's headline quantity — expected total cost per procedure access —
is ``(access + maintain) / number of accesses``, exposed as
:meth:`ProcedureManager.cost_per_access`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.procedure import DatabaseProcedure
from repro.core.strategy import ProcedureStrategy
from repro.query.expr import Expression
from repro.storage.page import RID
from repro.storage.tuples import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.batch import DeltaBatch


@dataclass
class AccessResult:
    """One procedure access: its rows and attributed cost."""

    name: str
    rows: list[Row]
    cost_ms: float


@dataclass
class UpdateResult:
    """One update transaction: base-relation cost vs maintenance cost."""

    relation: str
    tuples_modified: int
    base_cost_ms: float
    maintenance_cost_ms: float


class ProcedureManager:
    """Facade over a strategy plus its database."""

    def __init__(self, strategy: ProcedureStrategy) -> None:
        self.strategy = strategy
        self.catalog = strategy.catalog
        self.clock = strategy.clock
        self.access_cost_ms = 0.0
        self.maintenance_cost_ms = 0.0
        self.base_update_cost_ms = 0.0
        self.num_accesses = 0
        self.num_updates = 0
        # Real (wall-clock) seconds spent inside strategy access /
        # maintenance calls — the simulator's own speed, orthogonal to the
        # simulated cost model. Feeds the wall-clock benchmark lane.
        self.wall_access_s = 0.0
        self.wall_maintenance_s = 0.0
        self.last_rids: list[RID] = []
        #: Optional tap on the update stream: called with ``(relation,
        #: inserts, deletes)`` after every transaction's base changes are
        #: applied — the same delta the strategy's i-lock sweep consumes.
        #: The front-tier result cache (``repro.serve``) subscribes here.
        self.update_listener: (
            Callable[[str, list[Row], list[Row]], object] | None
        ) = None

    # -- definition -------------------------------------------------------

    def define_procedure(
        self, name: str, expression: "Expression | str"
    ) -> DatabaseProcedure:
        """Define and compile a stored procedure (one-time, uncharged work
        per the paper's static-optimization assumption — the clock must not
        advance).

        ``expression`` may be an algebra tree or QUEL source text
        (``"retrieve (R1.all) where R1.sel >= 100 and R1.sel < 300"``).
        """
        if isinstance(expression, str):
            from repro.query.parser import parse_retrieve

            expression = parse_retrieve(expression)
        before = self.clock.snapshot()
        procedure = DatabaseProcedure(name, expression).bind(self.catalog)
        self.strategy.define(procedure)
        charged = self.clock.elapsed_since(before)
        if charged:
            raise RuntimeError(
                f"strategy {self.strategy.strategy_name} charged {charged} ms "
                "during definition; definition must be cost-free"
            )
        return procedure

    @property
    def procedure_names(self) -> list[str]:
        return sorted(self.strategy.procedures)

    def _base_update_span(self):
        """Phase span tagging base-relation update I/O (``base.update``) —
        the cost the paper's per-access metric excludes — or a no-op when
        the clock is unobserved."""
        tracer = self.clock.tracer
        if tracer is None:
            return nullcontext()
        return tracer.span("base.update")

    # -- operations ----------------------------------------------------------

    def access(self, name: str) -> AccessResult:
        """Read one procedure's value, attributing the cost."""
        before = self.clock.snapshot()
        wall_start = time.perf_counter()
        rows = self.strategy.access(name)
        self.wall_access_s += time.perf_counter() - wall_start
        cost = self.clock.elapsed_since(before)
        self.access_cost_ms += cost
        self.num_accesses += 1
        return AccessResult(name=name, rows=rows, cost_ms=cost)

    def update(
        self,
        relation_name: str,
        changes: list[tuple[RID, Row]],
        cluster_field: str | None = None,
    ) -> UpdateResult:
        """Apply one update transaction: modify ``changes`` in place, then
        let the strategy maintain its structures.

        With ``cluster_field`` set, tuples whose clustering key changed are
        relocated next to their new key neighbours (index-organised
        behaviour), and :attr:`last_rids` records each change's resulting
        RID so callers can track tuples across moves.
        """
        relation = self.catalog.get(relation_name)
        before_base = self.clock.snapshot()
        deletes: list[Row] = []
        inserts: list[Row] = []
        self.last_rids = []
        with self._base_update_span():
            for rid, new_row in changes:
                if cluster_field is None:
                    old_row = relation.update(rid, new_row)
                    new_rid = rid
                else:
                    old_row, new_rid = relation.update_clustered(
                        rid, new_row, cluster_field
                    )
                self.last_rids.append(new_rid)
                deletes.append(old_row)
                inserts.append(new_row)
        base_cost = self.clock.elapsed_since(before_base)

        before_maint = self.clock.snapshot()
        wall_start = time.perf_counter()
        self.strategy.on_update(relation_name, inserts, deletes)
        self.wall_maintenance_s += time.perf_counter() - wall_start
        maint_cost = self.clock.elapsed_since(before_maint)

        self.base_update_cost_ms += base_cost
        self.maintenance_cost_ms += maint_cost
        self.num_updates += 1
        if self.update_listener is not None:
            self.update_listener(relation_name, inserts, deletes)
        return UpdateResult(
            relation=relation_name,
            tuples_modified=len(changes),
            base_cost_ms=base_cost,
            maintenance_cost_ms=maint_cost,
        )

    def update_deferred(
        self,
        relation_name: str,
        changes: list[tuple[RID, Row]],
        cluster_field: str | None = None,
    ) -> tuple[list[Row], list[Row]]:
        """Apply one update transaction's base changes *without* running
        strategy maintenance; returns the explicit ``(inserts, deletes)``
        row lists for the caller to accumulate into a
        :class:`repro.core.batch.DeltaBatch` and later hand to
        :meth:`maintain_batch`. Base accounting (cost bucket,
        ``num_updates``, :attr:`last_rids`) is identical to
        :meth:`update`."""
        relation = self.catalog.get(relation_name)
        before_base = self.clock.snapshot()
        deletes: list[Row] = []
        inserts: list[Row] = []
        self.last_rids = []
        with self._base_update_span():
            for rid, new_row in changes:
                if cluster_field is None:
                    old_row = relation.update(rid, new_row)
                    new_rid = rid
                else:
                    old_row, new_rid = relation.update_clustered(
                        rid, new_row, cluster_field
                    )
                self.last_rids.append(new_rid)
                deletes.append(old_row)
                inserts.append(new_row)
        self.base_update_cost_ms += self.clock.elapsed_since(before_base)
        self.num_updates += 1
        if self.update_listener is not None:
            self.update_listener(relation_name, inserts, deletes)
        return inserts, deletes

    def maintain_batch(self, batch: "DeltaBatch") -> float:
        """Run the strategy's deferred maintenance for ``batch`` (whose
        base changes :meth:`update_deferred` already applied); returns the
        simulated ms charged, accrued to the maintenance bucket."""
        before = self.clock.snapshot()
        wall_start = time.perf_counter()
        self.strategy.on_update_batch(batch)
        self.wall_maintenance_s += time.perf_counter() - wall_start
        maint_cost = self.clock.elapsed_since(before)
        self.maintenance_cost_ms += maint_cost
        return maint_cost

    def insert(self, relation_name: str, rows: list[Row]) -> UpdateResult:
        """Apply one insert transaction and let the strategy maintain its
        structures (Rete: ``+`` tokens; AVM: insert deltas; CI: broken
        i-locks)."""
        relation = self.catalog.get(relation_name)
        before_base = self.clock.snapshot()
        with self._base_update_span():
            self.last_rids = [relation.insert(row) for row in rows]
        base_cost = self.clock.elapsed_since(before_base)
        before_maint = self.clock.snapshot()
        wall_start = time.perf_counter()
        self.strategy.on_update(relation_name, list(rows), [])
        self.wall_maintenance_s += time.perf_counter() - wall_start
        maint_cost = self.clock.elapsed_since(before_maint)
        self.base_update_cost_ms += base_cost
        self.maintenance_cost_ms += maint_cost
        self.num_updates += 1
        if self.update_listener is not None:
            self.update_listener(relation_name, list(rows), [])
        return UpdateResult(
            relation=relation_name,
            tuples_modified=len(rows),
            base_cost_ms=base_cost,
            maintenance_cost_ms=maint_cost,
        )

    def delete(self, relation_name: str, rids: list[RID]) -> UpdateResult:
        """Apply one delete transaction with strategy maintenance."""
        relation = self.catalog.get(relation_name)
        before_base = self.clock.snapshot()
        with self._base_update_span():
            deleted = [relation.delete(rid) for rid in rids]
        base_cost = self.clock.elapsed_since(before_base)
        before_maint = self.clock.snapshot()
        wall_start = time.perf_counter()
        self.strategy.on_update(relation_name, [], deleted)
        self.wall_maintenance_s += time.perf_counter() - wall_start
        maint_cost = self.clock.elapsed_since(before_maint)
        self.base_update_cost_ms += base_cost
        self.maintenance_cost_ms += maint_cost
        self.num_updates += 1
        if self.update_listener is not None:
            self.update_listener(relation_name, [], deleted)
        return UpdateResult(
            relation=relation_name,
            tuples_modified=len(deleted),
            base_cost_ms=base_cost,
            maintenance_cost_ms=maint_cost,
        )

    # -- the paper's metric ----------------------------------------------------

    def cost_per_access(self) -> float:
        """Expected total cost per procedure access: read costs plus
        maintenance amortised over the accesses (base-relation update I/O
        excluded, as in the paper)."""
        if self.num_accesses == 0:
            return 0.0
        return (self.access_cost_ms + self.maintenance_cost_ms) / self.num_accesses

    def reset_counters(self) -> None:
        """Zero attribution counters (e.g. after a warm-up phase)."""
        self.access_cost_ms = 0.0
        self.maintenance_cost_ms = 0.0
        self.base_update_cost_ms = 0.0
        self.num_accesses = 0
        self.num_updates = 0
        self.wall_access_s = 0.0
        self.wall_maintenance_s = 0.0
