"""Delta joins for algebraic view maintenance.

The AVM identity the paper uses (after [BLT86])::

    V(A ∪ a − d, B) = V(A, B) ∪ V(a, B) − V(d, B)

means a procedure's change set is computed by running the procedure's join
with the changed relation replaced by its delta. :class:`DeltaJoiner` does
that for any member relation of an SPJ query: starting from the (already
restriction-screened) delta rows, it attaches the remaining relations one
join edge at a time, probing hash indexes where available and falling back
to charged scans where not, and finally assembles result rows in the
procedure's canonical column order.

For the paper's workload — updates only on the driving relation ``R1`` —
this reduces to: join the ``2fl`` screened tuples to ``R2`` through its hash
index (``C2 * Y2``), then to ``R3`` in model 2 (``C2 * Y7``).
"""

from __future__ import annotations

from typing import Any

from repro.query.analysis import SPJQuery
from repro.sim import CostClock
from repro.storage.catalog import Catalog
from repro.storage.tuples import Row


class DeltaJoinError(ValueError):
    """Raised when a delta cannot be computed (disconnected join graph)."""


class DeltaJoiner:
    """Computes procedure-result deltas from single-relation deltas.

    Two planning policies (the paper's §2 static-vs-dynamic AVM
    distinction, after [BLT86]):

    - ``"static"`` (default): join edges are attached in the compiled
      order — "all optimization overhead is paid only once when the
      execution plan is built; no optimization cost is incurred at run
      time". Optimal for the expected update pattern (the paper's:
      deltas always arrive on the driving relation), possibly not for
      others.
    - ``"dynamic"``: at each step the cheapest attachable edge is chosen
      from current access-path quality and relation sizes, at a per-delta
      planning charge of ``planning_cost_ms`` — "the execution plan for
      maintaining views may not always be optimal [under static
      optimization]" vs "the advantage of static optimization is the low
      planning overhead".
    """

    def __init__(
        self,
        query: SPJQuery,
        catalog: Catalog,
        clock: CostClock,
        policy: str = "static",
        planning_cost_ms: float = 0.0,
    ) -> None:
        if policy not in ("static", "dynamic"):
            raise ValueError(f"unknown delta planning policy {policy!r}")
        if planning_cost_ms < 0:
            raise ValueError("planning_cost_ms must be >= 0")
        self.query = query
        self.catalog = catalog
        self.clock = clock
        self.policy = policy
        self.planning_cost_ms = planning_cost_ms
        # Pre-resolve each join edge's two (relation, field) endpoints.
        self._edges: list[tuple[str, str, str, str]] = []
        for edge in query.joins:
            outer_rel = self._owner(edge.outer_field)
            self._edges.append(
                (outer_rel, edge.outer_field, edge.inner_relation, edge.inner_field)
            )
        self.last_attach_order: list[str] = []

    def _owner(self, field: str) -> str:
        owners = [
            name
            for name in self.query.relations
            if self.catalog.get(name).schema.has_field(field)
        ]
        if len(owners) != 1:
            raise DeltaJoinError(f"ambiguous owner for field {field!r}")
        return owners[0]

    def compute(
        self, changed_relation: str, delta_rows: list[Row]
    ) -> list[Row]:
        """Join ``delta_rows`` of ``changed_relation`` (already screened
        against that relation's restriction) to the other member relations;
        returns combined rows in the procedure's column order."""
        if changed_relation not in self.query.relations:
            raise DeltaJoinError(
                f"{changed_relation!r} is not a member of the query"
            )
        parts: list[dict[str, Row]] = [
            {changed_relation: row} for row in delta_rows
        ]
        attached = {changed_relation}
        pending = list(self._edges)
        self.last_attach_order = []
        if self.policy == "dynamic" and pending and parts:
            # Run-time optimization overhead, charged once per delta batch.
            if self.planning_cost_ms:
                self.clock.charge_fixed(self.planning_cost_ms)
        while pending and parts:
            candidates = []
            for edge in pending:
                outer_rel, outer_field, inner_rel, inner_field = edge
                if outer_rel in attached and inner_rel not in attached:
                    candidates.append((edge, inner_rel, inner_field, outer_rel, outer_field))
                elif inner_rel in attached and outer_rel not in attached:
                    candidates.append((edge, outer_rel, outer_field, inner_rel, inner_field))
            if not candidates:
                raise DeltaJoinError("join graph is disconnected")
            if self.policy == "dynamic":
                chosen = min(
                    candidates,
                    key=lambda c: self._attach_cost_estimate(c[1], c[2], len(parts)),
                )
            else:
                chosen = candidates[0]
            edge, new_rel, new_field, have_rel, have_field = chosen
            parts = self._attach(parts, have_rel, have_field, new_rel, new_field)
            attached.add(new_rel)
            pending.remove(edge)
            self.last_attach_order.append(new_rel)
        if not parts:
            return []
        order = self.query.relations
        out: list[Row] = []
        for part in parts:
            combined: tuple = ()
            for relation in order:
                combined = combined + part[relation]
            out.append(combined)
        return out

    def _attach_cost_estimate(
        self, new_rel: str, new_field: str, num_parts: int
    ) -> float:
        """A coarse estimated cost (in ms) to attach ``new_rel`` now.

        Access cost: a hash/B-tree attach fetches roughly one page per
        expected matching tuple (probe keys x average entries per key,
        capped at the relation size); an unindexed attach scans the whole
        relation. A *restricted* relation is preferred at equal access
        cost because attaching it early prunes the partial tuples every
        later attach must process — the classic push-selections-early
        heuristic, applied at maintenance time.
        """
        relation = self.catalog.get(new_rel)
        io = self.clock.params.c2
        hash_index = relation.hash_indexes.get(new_field)
        if hash_index is not None and hash_index.num_keys:
            per_key = hash_index.num_entries / hash_index.num_keys
            access = io * min(num_parts * per_key, relation.num_pages)
        elif new_field in relation.btree_indexes:
            access = io * min(num_parts, relation.num_pages)
        else:
            access = io * relation.num_pages
        restriction = self.query.restriction_of(new_rel)
        survivor_fraction = 0.5 if restriction.conjuncts() else 1.0
        downstream_penalty = self.clock.params.c1 * num_parts * survivor_fraction
        return access + downstream_penalty

    def _attach(
        self,
        parts: list[dict[str, Row]],
        have_rel: str,
        have_field: str,
        new_rel: str,
        new_field: str,
    ) -> list[dict[str, Row]]:
        """Extend every partial tuple with matching rows of ``new_rel``."""
        have_schema = self.catalog.get(have_rel).schema
        key_pos = have_schema.index_of(have_field)
        keys = {part[have_rel][key_pos] for part in parts}
        matches = self._lookup(new_rel, new_field, keys)
        restriction = self.query.restriction_of(new_rel)
        new_schema = self.catalog.get(new_rel).schema
        matcher = restriction.bind(new_schema)
        out: list[dict[str, Row]] = []
        for part in parts:
            key = part[have_rel][key_pos]
            for candidate in matches.get(key, ()):
                self.clock.charge_cpu(1)  # join + restriction screen
                if matcher(candidate):
                    extended = dict(part)
                    extended[new_rel] = candidate
                    out.append(extended)
        return out

    def _lookup(
        self, relation_name: str, field: str, keys: set[Any]
    ) -> dict[Any, list[Row]]:
        """Rows of ``relation_name`` whose ``field`` is in ``keys``, fetched
        through the best available access path (page I/O charged)."""
        relation = self.catalog.get(relation_name)
        if field in relation.hash_indexes:
            index = relation.hash_indexes[field]
            rids = []
            for key in keys:
                rids.extend(index.probe(key))
            rows = [row for _rid, row in relation.fetch_batched(sorted(rids))]
        elif field in relation.btree_indexes:
            index = relation.btree_indexes[field]
            rids = []
            for key in keys:
                rids.extend(rid for _k, rid in index.range_scan(key, key))
            rows = [row for _rid, row in relation.fetch_batched(sorted(rids))]
        else:
            # No index on the join field: a full (charged) scan, the honest
            # price of a missing access path.
            pos = relation.schema.index_of(field)
            rows = [row for _rid, row in relation.scan() if row[pos] in keys]
        pos = relation.schema.index_of(field)
        out: dict[Any, list[Row]] = {}
        for row in rows:
            out.setdefault(row[pos], []).append(row)
        return out
