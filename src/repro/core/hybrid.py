"""Per-procedure strategy assignment (extension).

The paper (§8) cites Sellis [Sel86, Sel87] on "how to decide whether or
not to maintain a cached copy of a given object" and notes the stakes are
higher for Update Cache, where maintaining a rarely-read object wastes
every update. The natural answer is to decide *per procedure*:
:class:`HybridStrategy` routes each procedure to a sub-strategy — e.g.
Update Cache for the hot set, Always Recompute for the cold tail — and
broadcasts updates to every sub-strategy in play (each maintains only its
own procedures, so no work is duplicated).

With a skewed access pattern this dominates every pure strategy: the hot
set's reads are served from maintained caches while the cold tail incurs
no maintenance at all.
"""

from __future__ import annotations

from typing import Callable, Mapping, Union

from repro.core.always_recompute import AlwaysRecompute
from repro.core.cache_invalidate import CacheAndInvalidate
from repro.core.procedure import DatabaseProcedure
from repro.core.strategy import ProcedureStrategy, StrategyName
from repro.core.update_cache_avm import UpdateCacheAVM
from repro.core.update_cache_rvm import UpdateCacheRVM
from repro.sim import CostClock
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.tuples import Row

Assigner = Union[
    Mapping[str, StrategyName],
    Callable[[DatabaseProcedure], StrategyName],
]

_SUB_CLASSES = {
    StrategyName.ALWAYS_RECOMPUTE: AlwaysRecompute,
    StrategyName.CACHE_INVALIDATE: CacheAndInvalidate,
    StrategyName.UPDATE_CACHE_AVM: UpdateCacheAVM,
    StrategyName.UPDATE_CACHE_RVM: UpdateCacheRVM,
}


class HybridStrategy(ProcedureStrategy):
    """Routes each procedure to its assigned sub-strategy.

    Args:
        assign: a mapping from procedure name to :class:`StrategyName`, or
            a callable deciding per procedure at definition time. Missing
            names fall back to ``default``.
        default: strategy for unassigned procedures.
        sub_strategy_kwargs: extra constructor arguments per sub-strategy
            name (e.g. ``{StrategyName.CACHE_INVALIDATE:
            {"c_inval": 60.0}}``).
    """

    strategy_name = StrategyName.HYBRID

    def __init__(
        self,
        catalog: Catalog,
        buffer: BufferPool,
        clock: CostClock,
        assign: Assigner | None = None,
        default: StrategyName = StrategyName.ALWAYS_RECOMPUTE,
        sub_strategy_kwargs: Mapping[StrategyName, dict] | None = None,
    ) -> None:
        super().__init__(catalog, buffer, clock)
        if default is StrategyName.HYBRID:
            raise ValueError("hybrid cannot default to itself")
        self._assign = assign
        self._default = default
        self._sub_kwargs = dict(sub_strategy_kwargs or {})
        self._subs: dict[StrategyName, ProcedureStrategy] = {}
        self._routes: dict[str, StrategyName] = {}

    # -- routing -------------------------------------------------------------

    def _decide(self, procedure: DatabaseProcedure) -> StrategyName:
        if self._assign is None:
            return self._default
        if callable(self._assign):
            choice = self._assign(procedure)
        else:
            choice = self._assign.get(procedure.name, self._default)
        if not isinstance(choice, StrategyName):
            choice = StrategyName(choice)
        if choice is StrategyName.HYBRID:
            raise ValueError("hybrid cannot route to itself")
        return choice

    def _sub(self, name: StrategyName) -> ProcedureStrategy:
        sub = self._subs.get(name)
        if sub is None:
            cls = _SUB_CLASSES[name]
            sub = cls(
                self.catalog,
                self.buffer,
                self.clock,
                **self._sub_kwargs.get(name, {}),
            )
            self._subs[name] = sub
        return sub

    def route_of(self, name: str) -> StrategyName:
        """Which sub-strategy serves ``name``."""
        return self._routes[name]

    def routing_report(self) -> dict[str, int]:
        """How many procedures each sub-strategy serves."""
        out: dict[str, int] = {}
        for choice in self._routes.values():
            out[choice.value] = out.get(choice.value, 0) + 1
        return out

    # -- strategy interface ----------------------------------------------------

    def _after_define(self, procedure: DatabaseProcedure) -> None:
        choice = self._decide(procedure)
        self._routes[procedure.name] = choice
        self._sub(choice).define(procedure)

    def access(self, name: str) -> list[Row]:
        self._procedure(name)
        route = self._routes[name]
        tracer = self.clock.tracer
        if tracer is not None:
            tracer.event(f"hybrid.access.{route.value}")
        return self._subs[route].access(name)

    def on_update(
        self, relation: str, inserts: list[Row], deletes: list[Row]
    ) -> None:
        """Broadcast to every instantiated sub-strategy; each maintains
        only its own procedures, so costs never double."""
        for sub in self._subs.values():
            sub.on_update(relation, inserts, deletes)

    def on_update_batch(self, batch) -> None:
        """Broadcast the whole batch: each sub-strategy applies its own
        batched algorithm (CI sweeps, RVM nets) over its own procedures."""
        for sub in self._subs.values():
            sub.on_update_batch(batch)

    def repair_procedure(self, name: str, full_rows: list[Row]) -> None:
        self._subs[self._routes[name]].repair_procedure(name, full_rows)

    def recover_after_crash(self) -> list[str]:
        """Each sub-strategy recovers its own state; the dirty sets (each
        sub reports only its own procedures) concatenate without overlap."""
        dirty: list[str] = []
        for sub in self._subs.values():
            dirty.extend(sub.recover_after_crash())
        return dirty

    def space_pages(self) -> int:
        return sum(sub.space_pages() for sub in self._subs.values())
