"""The paper's contribution: query-processing strategies for database
procedures.

Four strategies answer "read the value of procedure P":

- :class:`AlwaysRecompute` — run the stored, precompiled plan every time;
- :class:`CacheAndInvalidate` — serve from a cached value guarded by
  i-locks; recompute (and refresh the cache) only when invalidated;
- :class:`UpdateCacheAVM` — keep the cache always current with non-shared
  algebraic view maintenance (delta joins per procedure);
- :class:`UpdateCacheRVM` — keep the cache current with a shared Rete
  network (common subexpressions maintained once).

A :class:`ProcedureManager` binds one strategy to a database, routes
procedure definitions, accesses, and base-table updates, and attributes the
charged simulated cost to the access / maintenance / base-update buckets the
paper's per-access metric needs.
"""

from repro.core.procedure import DatabaseProcedure, ProcedureKind
from repro.core.strategy import ProcedureStrategy, StrategyName
from repro.core.batch import BatchAccumulator, DeltaBatch, net_deltas
from repro.core.always_recompute import AlwaysRecompute
from repro.core.cache_invalidate import CacheAndInvalidate
from repro.core.update_cache_avm import UpdateCacheAVM
from repro.core.update_cache_rvm import UpdateCacheRVM
from repro.core.hybrid import HybridStrategy
from repro.core.manager import AccessResult, ProcedureManager, UpdateResult
from repro.core.aggregates import GLOBAL_GROUP, GroupedAggregate
from repro.core.delta import DeltaJoiner

STRATEGY_CLASSES = {
    AlwaysRecompute.strategy_name: AlwaysRecompute,
    CacheAndInvalidate.strategy_name: CacheAndInvalidate,
    UpdateCacheAVM.strategy_name: UpdateCacheAVM,
    UpdateCacheRVM.strategy_name: UpdateCacheRVM,
}

__all__ = [
    "DatabaseProcedure",
    "ProcedureKind",
    "ProcedureStrategy",
    "StrategyName",
    "AlwaysRecompute",
    "CacheAndInvalidate",
    "UpdateCacheAVM",
    "UpdateCacheRVM",
    "HybridStrategy",
    "ProcedureManager",
    "AccessResult",
    "UpdateResult",
    "STRATEGY_CLASSES",
    "BatchAccumulator",
    "DeltaBatch",
    "net_deltas",
    "GroupedAggregate",
    "GLOBAL_GROUP",
    "DeltaJoiner",
]
