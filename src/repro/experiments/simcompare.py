"""Simulator-vs-model comparison.

The paper's numbers are analytical. The executable simulator implements the
actual strategies over a real (simulated-I/O) storage engine; this module
runs both at the same parameter point — scaled down in ``N`` for wall-clock
reasons, with the cost *clock* doing the measuring — and reports the pair,
so the benches can assert that the model's orderings and shapes hold when
the algorithms actually run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.api import STRATEGIES, cost_of
from repro.model.params import ModelParams
from repro.workload.runner import run_workload

SIM_SCALE_PARAMS = ModelParams(
    n_tuples=10_000,
    num_p1=25,
    num_p2=25,
    selectivity_f=0.004,  # P1 values hold 40 tuples (one page) like f=.001 at N=100k scale
    selectivity_f2=0.1,
    tuples_per_update=10,
)
"""A laptop-scale parameter point used by simulation benches: same page
counts per object as the paper's defaults, smaller universe."""


@dataclass
class ComparisonPoint:
    """Model prediction vs simulated measurement for one strategy."""

    strategy: str
    model_ms: float
    simulated_ms: float

    @property
    def ratio(self) -> float:
        """simulated / model (1.0 = perfect agreement)."""
        if self.model_ms == 0:
            return float("inf") if self.simulated_ms else 1.0
        return self.simulated_ms / self.model_ms


def simulate_figure_point(
    params: ModelParams,
    strategy: str,
    model: int = 1,
    num_operations: int = 400,
    seed: int = 7,
) -> ComparisonPoint:
    """Run one strategy in the simulator and pair it with the model."""
    predicted = cost_of(strategy, params, model).total_ms
    run = run_workload(
        params,
        strategy,
        model=model,
        num_operations=num_operations,
        seed=seed,
    )
    return ComparisonPoint(
        strategy=strategy,
        model_ms=predicted,
        simulated_ms=run.cost_per_access_ms,
    )


def sim_model_comparison(
    params: ModelParams = SIM_SCALE_PARAMS,
    model: int = 1,
    num_operations: int = 400,
    seed: int = 7,
) -> list[ComparisonPoint]:
    """All four strategies, simulator vs model, at one parameter point."""
    return [
        simulate_figure_point(
            params, strategy, model=model, num_operations=num_operations, seed=seed
        )
        for strategy in STRATEGIES
    ]


def render_comparison(points: list[ComparisonPoint]) -> str:
    """Aligned text table of a comparison."""
    lines = [
        f"{'strategy':24s} {'model ms':>10s} {'sim ms':>10s} {'sim/model':>10s}"
    ]
    for point in points:
        lines.append(
            f"{point.strategy:24s} {point.model_ms:10.1f} "
            f"{point.simulated_ms:10.1f} {point.ratio:10.2f}"
        )
    return "\n".join(lines)
