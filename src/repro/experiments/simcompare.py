"""Simulator-vs-model comparison.

The paper's numbers are analytical. The executable simulator implements the
actual strategies over a real (simulated-I/O) storage engine; this module
runs both at the same parameter point — scaled down in ``N`` for wall-clock
reasons, with the cost *clock* doing the measuring — and reports the pair,
so the benches can assert that the model's orderings and shapes hold when
the algorithms actually run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.api import STRATEGIES, cost_of
from repro.model.params import ModelParams
from repro.workload.runner import run_workload

SIM_SCALE_PARAMS = ModelParams(
    n_tuples=10_000,
    num_p1=25,
    num_p2=25,
    selectivity_f=0.004,  # P1 values hold 40 tuples (one page) like f=.001 at N=100k scale
    selectivity_f2=0.1,
    tuples_per_update=10,
)
"""A laptop-scale parameter point used by simulation benches: same page
counts per object as the paper's defaults, smaller universe."""


@dataclass
class ComparisonPoint:
    """Model prediction vs simulated measurement for one strategy."""

    strategy: str
    model_ms: float
    simulated_ms: float

    @property
    def ratio(self) -> float:
        """simulated / model (1.0 = perfect agreement)."""
        if self.model_ms == 0:
            return float("inf") if self.simulated_ms else 1.0
        return self.simulated_ms / self.model_ms


def simulate_figure_point(
    params: ModelParams,
    strategy: str,
    model: int = 1,
    num_operations: int = 400,
    seed: int = 7,
) -> ComparisonPoint:
    """Run one strategy in the simulator and pair it with the model."""
    predicted = cost_of(strategy, params, model).total_ms
    run = run_workload(
        params,
        strategy,
        model=model,
        num_operations=num_operations,
        seed=seed,
    )
    return ComparisonPoint(
        strategy=strategy,
        model_ms=predicted,
        simulated_ms=run.cost_per_access_ms,
    )


def sim_model_comparison(
    params: ModelParams = SIM_SCALE_PARAMS,
    model: int = 1,
    num_operations: int = 400,
    seed: int = 7,
) -> list[ComparisonPoint]:
    """All four strategies, simulator vs model, at one parameter point."""
    return [
        simulate_figure_point(
            params, strategy, model=model, num_operations=num_operations, seed=seed
        )
        for strategy in STRATEGIES
    ]


def render_comparison(points: list[ComparisonPoint]) -> str:
    """Aligned text table of a comparison."""
    lines = [
        f"{'strategy':24s} {'model ms':>10s} {'sim ms':>10s} {'sim/model':>10s}"
    ]
    for point in points:
        lines.append(
            f"{point.strategy:24s} {point.model_ms:10.1f} "
            f"{point.simulated_ms:10.1f} {point.ratio:10.2f}"
        )
    return "\n".join(lines)


# -- term-by-term attribution comparison (repro.obs) ------------------------

#: Per strategy: (term label, model component names summed, sim phases
#: summed). Terms partition both sides' non-informational cost: model
#: components cover the closed-form breakdown, phases cover everything the
#: observed run charged outside ``base.update`` (which the paper's metric
#: excludes).
ATTRIBUTION_GROUPS: dict[str, list[tuple[str, tuple[str, ...], tuple[str, ...]]]] = {
    "always_recompute": [
        (
            "recompute",
            ("recompute",),
            ("io.read", "io.write", "predicate.test"),
        ),
    ],
    "cache_invalidate": [
        ("cache read", ("cache_read_amortized",), ("cache.read",)),
        (
            "recompute+refresh",
            ("recompute_amortized",),
            ("io.read", "io.write", "predicate.test", "cache.refresh"),
        ),
        ("invalidation", ("invalidation",), ("ilock.check", "misc.fixed")),
    ],
    "update_cache_avm": [
        ("read value", ("read",), ("cache.read",)),
        ("screen", ("screen_p1", "screen_p2"), ("predicate.test",)),
        (
            "propagate",
            ("overhead", "join", "refresh_p1", "refresh_p2"),
            ("delta.propagate",),
        ),
    ],
    "update_cache_rvm": [
        ("read value", ("read",), ("cache.read",)),
        ("screen", ("screen_p1", "screen_p2_rete"), ("predicate.test",)),
        (
            "propagate",
            ("refresh_p1", "refresh_alpha", "refresh_p2", "join_alpha"),
            ("rete.alpha", "rete.beta", "delta.propagate"),
        ),
    ],
}


@dataclass
class AttributionPoint:
    """One cost term: the model's closed form vs the observed phase sum
    (both in ms per access)."""

    term: str
    model_ms: float
    sim_ms: float

    @property
    def ratio(self) -> float:
        if self.model_ms == 0:
            return float("inf") if self.sim_ms else 1.0
        return self.sim_ms / self.model_ms


def attribution_comparison(
    params: ModelParams,
    strategy: str,
    model: int = 1,
    num_operations: int = 400,
    seed: int = 7,
) -> list[AttributionPoint]:
    """Term-by-term model-vs-simulator cost attribution.

    Runs ``strategy`` once under a :class:`repro.obs.CostAttribution` and
    groups the observed phase costs (per access, ``base.update``
    excluded) against the analytical model's component terms using
    :data:`ATTRIBUTION_GROUPS`.
    """
    from repro.obs import CostAttribution

    groups = ATTRIBUTION_GROUPS.get(strategy)
    if groups is None:
        raise ValueError(
            f"no attribution grouping for strategy {strategy!r}; "
            f"choose from {sorted(ATTRIBUTION_GROUPS)}"
        )
    breakdown = cost_of(strategy, params, model)
    observation = CostAttribution()
    run = run_workload(
        params,
        strategy,
        model=model,
        num_operations=num_operations,
        seed=seed,
        observation=observation,
    )
    accesses = max(1, run.num_accesses)
    points = []
    for term, components, phases in groups:
        model_ms = sum(breakdown.components.get(c, 0.0) for c in components)
        sim_ms = sum(run.phase_costs.get(p, 0.0) for p in phases) / accesses
        points.append(
            AttributionPoint(term=term, model_ms=model_ms, sim_ms=sim_ms)
        )
    return points


def render_attribution(
    strategy: str, points: list[AttributionPoint]
) -> str:
    """Aligned text table of a term-by-term attribution comparison."""
    lines = [
        f"{strategy}: per-access cost attribution, model vs simulator",
        f"{'term':20s} {'model ms':>10s} {'sim ms':>10s} {'sim/model':>10s}",
    ]
    for point in points:
        ratio = f"{point.ratio:10.2f}" if point.model_ms else f"{'-':>10s}"
        lines.append(
            f"{point.term:20s} {point.model_ms:10.1f} "
            f"{point.sim_ms:10.1f} {ratio}"
        )
    lines.append(
        f"{'total':20s} {sum(p.model_ms for p in points):10.1f} "
        f"{sum(p.sim_ms for p in points):10.1f}"
    )
    return "\n".join(lines)
