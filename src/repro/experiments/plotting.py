"""ASCII charts for curve figures.

The paper's appendix is all plots; this renders the regenerated series as
terminal line charts (log-scaled y where the spread demands it), so the
figures are *visible*, not just tabulated — no plotting library required.

Marks: ``A`` Always Recompute, ``C`` Cache and Invalidate, ``a`` Update
Cache AVM, ``r`` Update Cache RVM; ``*`` where series coincide.
"""

from __future__ import annotations

import math

from repro.experiments.figures import FigureResult

MARKS = {
    "always_recompute": "A",
    "cache_invalidate": "C",
    "update_cache_avm": "a",
    "update_cache_rvm": "r",
}

DEFAULT_WIDTH = 64
DEFAULT_HEIGHT = 20


def render_ascii_chart(
    result: FigureResult,
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
) -> str:
    """Render a curves/sf_curves figure as an ASCII line chart."""
    if result.kind not in ("curves", "sf_curves"):
        raise ValueError(f"cannot chart result kind {result.kind!r}")
    xs = result.x_values
    all_values = [v for series in result.series.values() for v in series]
    lo, hi = min(all_values), max(all_values)
    use_log = lo > 0 and hi / max(lo, 1e-12) > 50

    def transform(value: float) -> float:
        return math.log10(max(value, 1e-12)) if use_log else value

    t_lo, t_hi = transform(lo), transform(hi)
    span = (t_hi - t_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, series in result.series.items():
        mark = MARKS.get(name, "?")
        for i, value in enumerate(series):
            col = round(i * (width - 1) / max(len(xs) - 1, 1))
            row = height - 1 - round(
                (transform(value) - t_lo) / span * (height - 1)
            )
            cell = grid[row][col]
            grid[row][col] = mark if cell == " " else "*"

    def y_label(row: int) -> str:
        t_value = t_lo + (height - 1 - row) / (height - 1) * span
        value = 10 ** t_value if use_log else t_value
        return f"{value:10.0f}"

    lines = []
    for row in range(height):
        label = y_label(row) if row % 4 == 0 or row == height - 1 else " " * 10
        lines.append(f"{label} |" + "".join(grid[row]))
    axis = " " * 10 + "+" + "-" * width
    lines.append(axis)
    x_lo, x_hi = xs[0], xs[-1]
    lines.append(
        " " * 11
        + f"{x_lo:<10g}"
        + f"{result.x_label:^{max(width - 20, 1)}s}"
        + f"{x_hi:>10g}"
    )
    legend = "   ".join(
        f"{MARKS[name]}={name}" for name in result.series if name in MARKS
    )
    lines.append(" " * 11 + legend + ("   (log y)" if use_log else ""))
    return "\n".join(lines)
