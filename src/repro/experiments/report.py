"""Text rendering of experiment results.

Renders the same rows/series the paper's figures show: aligned cost tables
for curve figures, ASCII maps for region figures (``A`` = Always Recompute,
``C`` = Cache and Invalidate, ``U`` = Update Cache; ``+``/``.`` for the
closeness figures), and plain tables for the parameter/access-method
tables.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult

_SERIES_LABELS = {
    "always_recompute": "AlwaysRecompute",
    "cache_invalidate": "CacheAndInval",
    "update_cache_avm": "UpdateCache-AVM",
    "update_cache_rvm": "UpdateCache-RVM",
}

_REGION_CHARS = {
    "always_recompute": "A",
    "cache_invalidate": "C",
    "update_cache": "U",
    "ci_within": "+",
    "ci_outside": ".",
}


def _format_table(header: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(header), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _render_curves(result: FigureResult) -> str:
    names = list(result.series)
    header = (result.x_label,) + tuple(
        _SERIES_LABELS.get(name, name) for name in names
    )
    rows = []
    for i, x in enumerate(result.x_values):
        rows.append(
            (f"{x:g}",)
            + tuple(f"{result.series[name][i]:10.1f}" for name in names)
        )
    return _format_table(header, rows)


def _render_grid(result: FigureResult) -> str:
    grid = result.grid
    assert grid is not None
    header = ("P \\ f",) + tuple(f"{f:g}" for f in grid.f_values)
    rows = []
    for i, p in enumerate(grid.p_values):
        rows.append(
            (f"{p:g}",)
            + tuple(
                _REGION_CHARS.get(label, "?") for label in grid.labels[i]
            )
        )
    legend = "  ".join(
        f"{char} = {label}"
        for label, char in _REGION_CHARS.items()
        if any(char in "".join(r) for r in ("".join(row[1:]) for row in rows))
    )
    return _format_table(header, rows) + "\n" + legend


def render_result(
    result: FigureResult, show_checks: bool = True, chart: bool = False
) -> str:
    """Human-readable rendering of a regenerated figure/table.

    ``chart=True`` appends an ASCII line chart for curve figures.
    """
    lines = [f"== {result.figure_id}: {result.title} =="]
    if result.notes:
        lines.extend(f"   {note}" for note in result.notes)
    lines.append("")
    if result.kind == "table":
        lines.append(_format_table(result.table_header, result.table_rows))
    elif result.kind in ("curves", "sf_curves"):
        lines.append("   (costs in simulated ms per procedure access)")
        lines.append(_render_curves(result))
        if chart:
            from repro.experiments.plotting import render_ascii_chart

            lines.append("")
            lines.append(render_ascii_chart(result))
    elif result.kind in ("regions", "closeness"):
        lines.append(f"   {result.x_label}")
        lines.append(_render_grid(result))
    else:  # pragma: no cover - defensive
        lines.append(f"(unknown result kind {result.kind!r})")
    if show_checks and result.checks:
        lines.append("")
        lines.append("paper-claim checks:")
        for check in result.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.name}")
    return "\n".join(lines)
