"""CSV and JSON export of regenerated figure data.

Every curve figure exports one row per x-value with one column per
strategy; region/closeness figures export one row per grid cell; tables
export verbatim. Useful for replotting the paper's figures with external
tools (`python -m repro export fig05 out.csv`). The JSON form carries
the repo-wide ``schema_version`` so downstream diff tooling (the bench
ledger, trend dashboards) can evolve against a stable contract.
"""

from __future__ import annotations

import csv
import io
import json

from repro.experiments.figures import FigureResult
from repro.obs.flight import SCHEMA_VERSION


def to_csv(result: FigureResult) -> str:
    """Render one experiment's data as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if result.kind in ("curves", "sf_curves"):
        names = list(result.series)
        writer.writerow([result.x_label] + names)
        for i, x in enumerate(result.x_values):
            writer.writerow([x] + [result.series[name][i] for name in names])
    elif result.kind in ("regions", "closeness"):
        grid = result.grid
        assert grid is not None
        writer.writerow(["update_probability", "selectivity_f", "label"])
        for i, p_value in enumerate(grid.p_values):
            for j, f_value in enumerate(grid.f_values):
                writer.writerow([p_value, f_value, grid.labels[i][j]])
    elif result.kind == "table":
        writer.writerow(result.table_header)
        for row in result.table_rows:
            writer.writerow(row)
    else:  # pragma: no cover - defensive
        raise ValueError(f"cannot export result kind {result.kind!r}")
    return buffer.getvalue()


def write_csv(result: FigureResult, path: str) -> None:
    """Write :func:`to_csv` output to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(result))


def to_json(result: FigureResult) -> dict:
    """One experiment's data as a JSON-ready, schema-versioned object."""
    payload: dict = {
        "schema_version": SCHEMA_VERSION,
        "kind": "figure_result",
        "figure_kind": result.kind,
        "figure_id": result.figure_id,
        "title": result.title,
        "checks_pass": result.all_checks_pass,
    }
    if result.kind in ("curves", "sf_curves"):
        payload["x_label"] = result.x_label
        payload["x_values"] = list(result.x_values)
        payload["series"] = {
            name: list(values) for name, values in result.series.items()
        }
    elif result.kind in ("regions", "closeness"):
        grid = result.grid
        assert grid is not None
        payload["grid"] = {
            "p_values": list(grid.p_values),
            "f_values": list(grid.f_values),
            "labels": [list(row) for row in grid.labels],
        }
    elif result.kind == "table":
        payload["table_header"] = list(result.table_header)
        payload["table_rows"] = [list(row) for row in result.table_rows]
    else:  # pragma: no cover - defensive
        raise ValueError(f"cannot export result kind {result.kind!r}")
    return payload


def write_json(result: FigureResult, path: str) -> None:
    """Write :func:`to_json` output to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_json(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
