"""CSV export of regenerated figure data.

Every curve figure exports one row per x-value with one column per
strategy; region/closeness figures export one row per grid cell; tables
export verbatim. Useful for replotting the paper's figures with external
tools (`python -m repro export fig05 out.csv`).
"""

from __future__ import annotations

import csv
import io

from repro.experiments.figures import FigureResult


def to_csv(result: FigureResult) -> str:
    """Render one experiment's data as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if result.kind in ("curves", "sf_curves"):
        names = list(result.series)
        writer.writerow([result.x_label] + names)
        for i, x in enumerate(result.x_values):
            writer.writerow([x] + [result.series[name][i] for name in names])
    elif result.kind in ("regions", "closeness"):
        grid = result.grid
        assert grid is not None
        writer.writerow(["update_probability", "selectivity_f", "label"])
        for i, p_value in enumerate(grid.p_values):
            for j, f_value in enumerate(grid.f_values):
                writer.writerow([p_value, f_value, grid.labels[i][j]])
    elif result.kind == "table":
        writer.writerow(result.table_header)
        for row in result.table_rows:
            writer.writerow(row)
    else:  # pragma: no cover - defensive
        raise ValueError(f"cannot export result kind {result.kind!r}")
    return buffer.getvalue()


def write_csv(result: FigureResult, path: str) -> None:
    """Write :func:`to_csv` output to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(result))
