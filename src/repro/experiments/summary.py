"""One-shot reproduction report.

``python -m repro report [-o REPORT.md]`` regenerates every table and
figure, evaluates all embedded paper-claim checks, runs the simulator
head-to-head against the model at the default point, and emits a single
markdown document recording the outcome — the artifact a reviewer would
ask for.
"""

from __future__ import annotations

from repro.experiments.figures import REGISTRY, run_experiment
from repro.experiments.report import render_result
from repro.experiments.simcompare import (
    SIM_SCALE_PARAMS,
    render_comparison,
    sim_model_comparison,
)


def build_report(include_simulation: bool = True, sim_operations: int = 300) -> str:
    """Regenerate everything and render one markdown report."""
    lines = [
        "# Reproduction report",
        "",
        "Hanson, *Processing Queries Against Database Procedures: A "
        "Performance Analysis* (SIGMOD 1988).",
        "",
        "Every table/figure regenerated from the analytical model; every "
        "embedded paper-claim check evaluated. Costs in simulated ms per "
        "procedure access.",
        "",
    ]
    total_checks = 0
    failed: list[str] = []
    for figure_id in REGISTRY:
        result = run_experiment(figure_id)
        total_checks += len(result.checks)
        failed.extend(
            f"{figure_id}: {name}" for name in result.failed_checks()
        )
        lines.append(f"## {figure_id}")
        lines.append("")
        lines.append("```")
        lines.append(render_result(result))
        lines.append("```")
        lines.append("")

    lines.append("## simulator vs model (executable validation)")
    lines.append("")
    if include_simulation:
        points = sim_model_comparison(
            SIM_SCALE_PARAMS, model=1, num_operations=sim_operations
        )
        lines.append("```")
        lines.append(render_comparison(points))
        lines.append("```")
    else:
        lines.append("(skipped)")
    lines.append("")

    lines.append("## verdict")
    lines.append("")
    lines.append(
        f"- experiments regenerated: {len(REGISTRY)}"
    )
    lines.append(f"- paper-claim checks evaluated: {total_checks}")
    if failed:
        lines.append(f"- FAILED checks: {len(failed)}")
        lines.extend(f"  - {item}" for item in failed)
    else:
        lines.append("- failed checks: none")
    return "\n".join(lines) + "\n"
