"""Per-figure experiment drivers.

One driver per table/figure of the paper's evaluation (body-text numbering;
see DESIGN.md for the appendix-caption offset). Each driver returns a
:class:`FigureResult` carrying the series or region grid the paper plots,
plus programmatic checks of the paper's qualitative claims about that
figure. :mod:`repro.experiments.report` renders results as aligned text
tables and ASCII region maps; the CLI (``python -m repro``) and the
benchmark suite both consume the same registry.
"""

from repro.experiments.figures import (
    FigureResult,
    REGISTRY,
    run_experiment,
)
from repro.experiments.report import render_result
from repro.experiments.simcompare import simulate_figure_point, sim_model_comparison

__all__ = [
    "FigureResult",
    "REGISTRY",
    "run_experiment",
    "render_result",
    "simulate_figure_point",
    "sim_model_comparison",
]
