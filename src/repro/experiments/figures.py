"""Figure and table drivers.

Numbering follows the paper's body text: Figures 4-15 evaluate model 1,
Figures 17-19 model 2 (16 is a network diagram; 1-3 are diagrams and the
parameter table). Every driver embeds the paper's qualitative claims about
its figure as named boolean checks, evaluated against the regenerated data —
the benches assert them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.model.api import (
    STRATEGIES,
    sweep_sharing_factor,
    sweep_update_probability,
)
from repro.model.params import DEFAULT_PARAMS, ModelParams
from repro.model.regions import RegionGrid, closeness_grid, winner_grid

P_SWEEP = [round(0.05 * i, 2) for i in range(19)]  # 0.00 .. 0.90
SF_SWEEP = [round(0.05 * i, 2) for i in range(21)]  # 0.00 .. 1.00
F_GRID = [0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02]
P_GRID = [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


@dataclass
class Check:
    """A named, reproducible assertion about a figure's data."""

    name: str
    passed: bool


@dataclass
class FigureResult:
    """Everything a figure regeneration produced."""

    figure_id: str
    title: str
    kind: str  # "curves" | "sf_curves" | "regions" | "closeness" | "table"
    params: ModelParams
    model: int
    x_label: str = ""
    x_values: list[float] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    grid: Optional[RegionGrid] = None
    table_rows: list[tuple[str, ...]] = field(default_factory=list)
    table_header: tuple[str, ...] = ()
    notes: list[str] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)

    def check(self, name: str, passed: bool) -> None:
        self.checks.append(Check(name, bool(passed)))

    @property
    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[str]:
        return [c.name for c in self.checks if not c.passed]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _p_sweep_figure(
    figure_id: str,
    title: str,
    params: ModelParams,
    model: int,
    notes: list[str],
) -> FigureResult:
    series = sweep_update_probability(params, P_SWEEP, model=model)
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        kind="curves",
        params=params,
        model=model,
        x_label="update probability P",
        x_values=list(P_SWEEP),
        series=series,
        notes=notes,
    )
    _common_curve_checks(result)
    return result


def _common_curve_checks(result: FigureResult) -> None:
    """Claims the paper makes about *every* cost-vs-P figure."""
    s = result.series
    ar = s["always_recompute"]
    result.check(
        "always_recompute is flat in P",
        max(ar) - min(ar) < 1e-9 * max(ar),
    )
    result.check(
        "cache_invalidate equals update_cache at P=0",
        abs(s["cache_invalidate"][0] - s["update_cache_avm"][0]) < 1e-9
        and abs(s["cache_invalidate"][0] - s["update_cache_rvm"][0]) < 1e-9,
    )
    for name in ("cache_invalidate", "update_cache_avm", "update_cache_rvm"):
        values = s[name]
        result.check(
            f"{name} is non-decreasing in P",
            all(b >= a - 1e-9 for a, b in zip(values, values[1:])),
        )
    # Update Cache's cost explodes as P grows; its rise from P=0 to P=0.9
    # must dwarf Cache and Invalidate's (which plateaus near AR).
    if result.params.inval_cost_ms == 0:
        uc_rise = s["update_cache_avm"][-1] - s["update_cache_avm"][0]
        ci_rise = s["cache_invalidate"][-1] - s["cache_invalidate"][0]
        result.check(
            "update_cache degrades faster than cache_invalidate at high P",
            uc_rise > ci_rise,
        )


# ---------------------------------------------------------------------------
# Tables (paper §3 and Figure 2)
# ---------------------------------------------------------------------------


def table_parameters(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """The paper's Figure 2: parameters and default values."""
    rows = [
        ("N", "tuples in R1", f"{params.n_tuples}"),
        ("S", "bytes per tuple", f"{params.tuple_bytes}"),
        ("B", "bytes per block", f"{params.block_bytes}"),
        ("b", "total blocks (N*S/B)", f"{params.blocks:g}"),
        ("d", "bytes per B-tree index record", f"{params.index_entry_bytes}"),
        ("k", "update transactions", f"{params.num_updates:g}"),
        ("l", "tuples modified per update", f"{params.tuples_per_update:g}"),
        ("q", "procedure accesses", f"{params.num_queries:g}"),
        ("P", "update probability k/(k+q)", f"{params.update_probability:g}"),
        ("f", "selectivity of C_f", f"{params.selectivity_f:g}"),
        ("f2", "selectivity of C_f2", f"{params.selectivity_f2:g}"),
        ("fR2", "|R2|/N", f"{params.r2_fraction:g}"),
        ("fR3", "|R3|/N", f"{params.r3_fraction:g}"),
        ("C1", "ms per predicate screen", f"{params.cpu_test_ms:g}"),
        ("C2", "ms per disk read/write", f"{params.io_ms:g}"),
        ("C3", "ms per delta-set tuple", f"{params.overhead_ms:g}"),
        ("N1", "type-P1 procedures", f"{params.num_p1}"),
        ("N2", "type-P2 procedures", f"{params.num_p2}"),
        ("SF", "sharing factor", f"{params.sharing_factor:g}"),
        ("C_inval", "ms per invalidation record", f"{params.inval_cost_ms:g}"),
        ("Z", "locality skew", f"{params.locality:g}"),
    ]
    result = FigureResult(
        figure_id="table_fig2",
        title="Figure 2: procedure query cost parameters and default values",
        kind="table",
        params=params,
        model=1,
        table_header=("symbol", "definition", "value"),
        table_rows=rows,
    )
    result.check(
        "P1 procedures contain fN = 100 tuples at defaults",
        params.selectivity_f * params.n_tuples == 100,
    )
    result.check(
        "P2 procedures contain f*N = 10 tuples at defaults",
        abs(params.f_star * params.n_tuples - 10) < 1e-9,
    )
    return result


def table_access_methods(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """The paper's §3 access-method table."""
    rows = [
        ("R1", "B-tree primary index on the C_f(R1) selection field (sel)"),
        ("R2", "hashed primary index on its join attribute (b)"),
        ("R3", "hashed primary index on its join attribute (d)"),
    ]
    result = FigureResult(
        figure_id="table_access_methods",
        title="Section 3: access methods of the base relations",
        kind="table",
        params=params,
        model=1,
        table_header=("relation", "access method"),
        table_rows=rows,
    )
    # Verify the synthetic database actually builds these access methods.
    from repro.workload import build_database

    db = build_database(
        params.replace(n_tuples=500, num_p1=1, num_p2=1), seed=0
    )
    result.check("R1 carries a B-tree on sel", "sel" in db.r1.btree_indexes)
    result.check("R2 carries a hash index on b", "b" in db.r2.hash_indexes)
    result.check("R3 carries a hash index on d", "d" in db.r3.hash_indexes)
    result.check(
        "R1's B-tree fanout is B/d",
        db.r1.btree_indexes["sel"].fanout == params.btree_fanout,
    )
    return result


# ---------------------------------------------------------------------------
# Model 1 cost-vs-P figures (4-10)
# ---------------------------------------------------------------------------


def figure04(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P with the naive 2-I/O invalidation (C_inval=60ms)."""
    point = params.replace(inval_cost_ms=2 * params.io_ms)
    result = _p_sweep_figure(
        "fig04",
        "Query cost vs update probability, high invalidation cost (60 ms)",
        point,
        model=1,
        notes=[
            "Cache and Invalidate pays 2 I/Os to flag each invalidated",
            "procedure value, so its cost is highly sensitive to C_inval.",
        ],
    )
    free = sweep_update_probability(
        params.replace(inval_cost_ms=0.0), P_SWEEP, model=1
    )
    mid = P_SWEEP.index(0.5)
    result.check(
        "costly invalidation at least doubles CI's cost at P=0.5",
        result.series["cache_invalidate"][mid]
        >= 1.3 * free["cache_invalidate"][mid],
    )
    result.check(
        "with costly invalidation CI exceeds Always Recompute at P=0.5",
        result.series["cache_invalidate"][mid]
        > result.series["always_recompute"][mid],
    )
    return result


def figure05(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P with free invalidation (C_inval=0) — the default."""
    point = params.replace(inval_cost_ms=0.0)
    result = _p_sweep_figure(
        "fig05",
        "Query cost vs update probability, low invalidation cost (0 ms)",
        point,
        model=1,
        notes=[
            "CI trails Update Cache for 0 < P < 0.7 (incremental updates",
            "beat invalidate-and-recompute; CI also suffers false",
            "invalidations), then plateaus slightly above Always Recompute.",
        ],
    )
    s = result.series
    in_range = [i for i, p in enumerate(P_SWEEP) if 0.05 <= p <= 0.65]
    result.check(
        "CI costs more than UC (AVM) throughout 0 < P < 0.7",
        all(s["cache_invalidate"][i] > s["update_cache_avm"][i] for i in in_range),
    )
    high = [i for i, p in enumerate(P_SWEEP) if p >= 0.75]
    result.check(
        "CI plateaus slightly above AR for large P (within 15%)",
        all(
            1.0
            <= s["cache_invalidate"][i] / s["always_recompute"][i]
            <= 1.15
            for i in high
        ),
    )
    result.check(
        "UC (AVM) overtakes CI at very high P",
        s["update_cache_avm"][-1] > s["cache_invalidate"][-1],
    )
    return result


def figure06(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P for large objects (f=0.01)."""
    point = params.replace(selectivity_f=0.01)
    result = _p_sweep_figure(
        "fig06",
        "Query cost vs update probability, large objects (f = 0.01)",
        point,
        model=1,
        notes=[
            "P1 values hold 1000 tuples, P2 values 100. Incrementally",
            "updating a large object is far cheaper than recomputing it,",
            "so Update Cache dominates CI at low update probability.",
        ],
    )
    s = result.series
    low = [i for i, p in enumerate(P_SWEEP) if 0.05 <= p <= 0.3]
    result.check(
        "UC beats CI clearly (>25%) at low P for large objects",
        all(
            s["update_cache_avm"][i] < 0.75 * s["cache_invalidate"][i]
            for i in low
        ),
    )
    return result


def figure07(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P for small objects (f=0.0001)."""
    point = params.replace(selectivity_f=0.0001)
    result = _p_sweep_figure(
        "fig07",
        "Query cost vs update probability, small objects (f = 0.0001)",
        point,
        model=1,
        notes=[
            "P1 values hold 10 tuples, P2 values 1. CI is competitive with",
            "Update Cache and free of UC's high-P degradation. The paper's",
            "§8 headline: at P=0.1, CI and UC beat AR ~5x and ~7x.",
        ],
    )
    s = result.series
    i01 = P_SWEEP.index(0.1)
    ar = s["always_recompute"][i01]
    result.check(
        "at P=0.1 CI beats AR by ~5x (within [3.5, 6])",
        3.5 <= ar / s["cache_invalidate"][i01] <= 6.0,
    )
    result.check(
        "at P=0.1 UC beats AR by ~7x (within [5, 8.5])",
        5.0 <= ar / s["update_cache_avm"][i01] <= 8.5,
    )
    low = [i for i, p in enumerate(P_SWEEP) if p <= 0.5]
    result.check(
        "CI stays within 2x of UC for small objects at low P",
        all(
            s["cache_invalidate"][i] <= 2.0 * s["update_cache_avm"][i]
            for i in low
        ),
    )
    return result


def figure08(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P for single-tuple objects (f=1/N, N1=100, N2=0)."""
    point = params.replace(
        selectivity_f=1.0 / params.n_tuples, num_p1=100, num_p2=0
    )
    result = _p_sweep_figure(
        "fig08",
        "Query cost vs update probability, single-tuple objects (f = 1/N)",
        point,
        model=1,
        notes=[
            "Every procedure selects one tuple. CI is essentially",
            "equivalent to Update Cache, minus UC's high-P degradation.",
        ],
    )
    s = result.series
    low = [i for i, p in enumerate(P_SWEEP) if p <= 0.4]
    result.check(
        "CI within 35% of UC for single-tuple objects at low P",
        all(
            s["cache_invalidate"][i] <= 1.35 * s["update_cache_avm"][i]
            for i in low
        ),
    )
    result.check(
        "CI does not degrade past AR by more than 10% at P=0.9",
        s["cache_invalidate"][-1] <= 1.10 * s["always_recompute"][-1],
    )
    return result


def figure09(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P under high locality (Z=0.05)."""
    point = params.replace(locality=0.05)
    result = _p_sweep_figure(
        "fig09",
        "Query cost vs update probability, high locality (Z = 0.05)",
        point,
        model=1,
        notes=[
            "5% of procedures receive 95% of accesses. Hot procedures are",
            "re-read before many updates accumulate, so CI benefits; UC",
            "pays maintenance regardless of access pattern.",
        ],
    )
    default_ci = sweep_update_probability(
        params, P_SWEEP, model=1, strategies=("cache_invalidate",)
    )["cache_invalidate"]
    mid = [i for i, p in enumerate(P_SWEEP) if 0.1 <= p <= 0.5]
    result.check(
        "high locality lowers CI's cost vs default Z at moderate P",
        all(result.series["cache_invalidate"][i] < default_ci[i] for i in mid),
    )
    return result


def figure10(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P with many objects (N1=N2=1000)."""
    point = params.replace(num_p1=1000, num_p2=1000)
    result = _p_sweep_figure(
        "fig10",
        "Query cost vs update probability, many objects (N1 = N2 = 1000)",
        point,
        model=1,
        notes=[
            "More maintained objects steepen Update Cache's slope: every",
            "update must maintain 10x as many materialised values.",
        ],
    )
    baseline = sweep_update_probability(params, P_SWEEP, model=1)
    i = P_SWEEP.index(0.5)
    slope_big = (
        result.series["update_cache_avm"][i]
        - result.series["update_cache_avm"][0]
    )
    slope_small = baseline["update_cache_avm"][i] - baseline["update_cache_avm"][0]
    result.check(
        "10x objects raise UC's cost growth by >5x",
        slope_big > 5.0 * slope_small,
    )
    return result


# ---------------------------------------------------------------------------
# Sharing-factor figures (11 model 1, 18 model 2)
# ---------------------------------------------------------------------------


def _sf_figure(
    figure_id: str, title: str, params: ModelParams, model: int, notes: list[str]
) -> FigureResult:
    series = sweep_sharing_factor(params, SF_SWEEP, model=model)
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        kind="sf_curves",
        params=params,
        model=model,
        x_label="sharing factor SF",
        x_values=list(SF_SWEEP),
        series=series,
        notes=notes,
    )
    avm = series["update_cache_avm"]
    rvm = series["update_cache_rvm"]
    result.check("AVM is flat in SF", max(avm) - min(avm) < 1e-9 * max(avm))
    result.check(
        "RVM cost strictly decreases with SF",
        all(b < a for a, b in zip(rvm, rvm[1:])),
    )
    return result


def figure11(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """AVM vs RVM over SF, model 1 (two-way joins)."""
    result = _sf_figure(
        "fig11",
        "Update Cache variants vs sharing factor (model 1)",
        params,
        model=1,
        notes=[
            "With two-way joins, RVM's alpha-memory refresh overhead eats",
            "its sharing savings: RVM only approaches AVM as SF -> 1.",
        ],
    )
    avm = result.series["update_cache_avm"]
    rvm = result.series["update_cache_rvm"]
    result.check(
        "RVM is worse than AVM for SF <= 0.9 in model 1",
        all(r > a for r, a, sf in zip(rvm, avm, SF_SWEEP) if sf <= 0.9),
    )
    result.check(
        "RVM becomes comparable to AVM only near SF = 1",
        rvm[-1] <= avm[-1],
    )
    return result


def figure18(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """AVM vs RVM over SF, model 2 (three-way joins); crossover ~0.47."""
    result = _sf_figure(
        "fig18",
        "Update Cache variants vs sharing factor (model 2)",
        params,
        model=2,
        notes=[
            "RVM joins changed R1 tuples once against the precomputed",
            "sigma_Cf2(R2) |><| R3 beta-memory; AVM joins through R2 then",
            "R3. The paper puts the break-even near SF = 0.47.",
        ],
    )
    avm = result.series["update_cache_avm"]
    rvm = result.series["update_cache_rvm"]
    crossover = next(
        (sf for sf, a, r in zip(SF_SWEEP, avm, rvm) if r <= a), None
    )
    result.check(
        "AVM/RVM crossover lies in [0.35, 0.6] (paper: ~0.47)",
        crossover is not None and 0.35 <= crossover <= 0.6,
    )
    result.check(
        "RVM is superior to AVM for high sharing factors",
        rvm[-1] < avm[-1],
    )
    return result


# ---------------------------------------------------------------------------
# Region figures (12, 13, 19) and closeness figures (14, 15)
# ---------------------------------------------------------------------------


def _region_figure(
    figure_id: str,
    title: str,
    params: ModelParams,
    model: int,
    notes: list[str],
    default_locality_checks: bool = True,
) -> FigureResult:
    grid = winner_grid(params, P_GRID, F_GRID, model=model)
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        kind="regions",
        params=params,
        model=model,
        x_label="object size f (columns) vs update probability P (rows)",
        grid=grid,
        notes=notes,
    )
    result.check(
        "Update Cache wins at the lowest update probability",
        all(label == "update_cache" for label in grid.labels[0]),
    )
    if default_locality_checks:
        # At default locality, AR takes the whole high-P row, and (the
        # paper's observation) UC's winning P-range narrows as objects
        # grow because large objects are maintained on almost every
        # update.
        result.check(
            "Always Recompute wins at the highest update probability",
            all(label == "always_recompute" for label in grid.labels[-1]),
        )

        def uc_extent(col: int) -> int:
            return sum(1 for row in grid.labels if row[col] == "update_cache")

        result.check(
            "Update Cache's winning P-range shrinks as objects grow",
            uc_extent(0) >= uc_extent(len(F_GRID) - 1),
        )
    return result


def figure12(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Winner regions over (P, f), model 1."""
    return _region_figure(
        "fig12",
        "Winning algorithm per (update probability, object size), model 1",
        params,
        model=1,
        notes=[
            "Three regions: Update Cache at low P, Always Recompute at",
            "high P; CI's outright-win region is insignificant but it is",
            "close to UC near the boundary (see fig14).",
        ],
    )


def figure13(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Winner regions under high locality (Z=0.05)."""
    point = params.replace(locality=0.05)
    result = _region_figure(
        "fig13",
        "Winning algorithm per (P, f) under high locality (Z = 0.05)",
        point,
        model=1,
        notes=[
            "Locality helps CI (hot caches are revalidated cheaply) but",
            "not UC; CI wins cells with small objects (f < ~0.002) — even",
            "at high P, where hot caches mostly stay valid between reads.",
        ],
        default_locality_checks=False,
    )
    assert result.grid is not None
    result.check(
        "Always Recompute still wins large objects at the highest P",
        result.grid.labels[-1][-1] == "always_recompute",
    )
    ci_cells = result.grid.count("cache_invalidate")
    default_ci_cells = winner_grid(params, P_GRID, F_GRID, model=1).count(
        "cache_invalidate"
    )
    result.check(
        "high locality grows CI's winning region",
        ci_cells > default_ci_cells,
    )
    small_f_cols = [j for j, f in enumerate(F_GRID) if f < 0.002]
    result.check(
        "CI's wins concentrate on small objects (f < 0.002)",
        all(
            row[j] != "cache_invalidate"
            for row in result.grid.labels
            for j in range(len(F_GRID))
            if j not in small_f_cols
        ),
    )
    return result


def figure14(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Where CI is within 2x of (or better than) Update Cache."""
    grid = closeness_grid(params, P_GRID, F_GRID, factor=2.0, model=1)
    result = FigureResult(
        figure_id="fig14",
        title="Cache and Invalidate within a factor of 2 of Update Cache",
        kind="closeness",
        params=params,
        model=1,
        x_label="object size f (columns) vs update probability P (rows)",
        grid=grid,
        notes=[
            "CI is close to UC at high P (where UC degrades) and for",
            "small objects at low P.",
        ],
    )
    high_p_rows = [i for i, p in enumerate(P_GRID) if p >= 0.7]
    result.check(
        "CI is within 2x of UC everywhere at high P",
        all(
            grid.labels[i][j] == "ci_within"
            for i in high_p_rows
            for j in range(len(F_GRID))
        ),
    )
    smallest_f = 0
    result.check(
        "CI is within 2x of UC for the smallest objects at every P",
        all(row[smallest_f] == "ci_within" for row in grid.labels),
    )
    return result


def figure15(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Closeness with f2=1 — no false invalidations."""
    point = params.replace(selectivity_f2=1.0)
    grid = closeness_grid(point, P_GRID, F_GRID, factor=2.0, model=1)
    result = FigureResult(
        figure_id="fig15",
        title="CI within 2x of Update Cache with f2 = 1 (no false invalidation)",
        kind="closeness",
        params=point,
        model=1,
        x_label="object size f (columns) vs update probability P (rows)",
        grid=grid,
        notes=[
            "With f2 = 1 every broken lock reflects a real change, so CI",
            "stops paying for false invalidations and does even better on",
            "small objects.",
        ],
    )
    base = closeness_grid(params, P_GRID, F_GRID, factor=2.0, model=1)
    result.check(
        "removing false invalidations does not shrink CI's close region",
        grid.count("ci_within") >= base.count("ci_within"),
    )
    return result


# ---------------------------------------------------------------------------
# Model 2 (17, 19)
# ---------------------------------------------------------------------------


def figure17(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Query cost vs P, model 2, defaults — compare with figure 5."""
    result = _p_sweep_figure(
        "fig17",
        "Query cost vs update probability, model 2 defaults",
        params,
        model=2,
        notes=[
            "Same shape as figure 5; the main difference is RVM now beats",
            "AVM at the default SF = 0.5 thanks to the precomputed",
            "R2 |><| R3 subexpression.",
        ],
    )
    s = result.series
    mid = [i for i, p in enumerate(P_SWEEP) if 0.3 <= p <= 0.9]
    result.check(
        "RVM is at or below AVM at default SF=0.5 in model 2",
        all(s["update_cache_rvm"][i] <= s["update_cache_avm"][i] + 1e-9 for i in mid),
    )
    model1_ar = sweep_update_probability(
        params, [0.5], model=1, strategies=("always_recompute",)
    )["always_recompute"][0]
    result.check(
        "three-way recompute costs more than two-way",
        s["always_recompute"][0] > model1_ar,
    )
    return result


def figure19(params: ModelParams = DEFAULT_PARAMS) -> FigureResult:
    """Winner regions over (P, f), model 2."""
    result = _region_figure(
        "fig19",
        "Winning algorithm per (update probability, object size), model 2",
        params,
        model=2,
        notes=[
            "Mirrors figure 12, but the best Update Cache variant is RVM",
            "rather than AVM.",
        ],
    )
    # Verify the "best UC variant" claim at a representative low-P cell.
    from repro.model.api import cost_of

    point = params.replace(selectivity_f=0.001).with_update_probability(0.2)
    avm = cost_of("update_cache_avm", point, 2).total_ms
    rvm = cost_of("update_cache_rvm", point, 2).total_ms
    result.check("the best Update Cache variant in model 2 is RVM", rvm < avm)
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

REGISTRY: dict[str, Callable[..., FigureResult]] = {
    "table_fig2": table_parameters,
    "table_access_methods": table_access_methods,
    "fig04": figure04,
    "fig05": figure05,
    "fig06": figure06,
    "fig07": figure07,
    "fig08": figure08,
    "fig09": figure09,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    "fig17": figure17,
    "fig18": figure18,
    "fig19": figure19,
}


def run_experiment(
    figure_id: str, params: ModelParams = DEFAULT_PARAMS
) -> FigureResult:
    """Regenerate one figure/table by id (see :data:`REGISTRY`)."""
    try:
        driver = REGISTRY[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {figure_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return driver(params)
