"""Selection predicates.

Predicates are immutable descriptions; :meth:`Predicate.bind` compiles one
against a schema into a fast positional matcher. The paper's restriction
terms ``C_f(R_i)`` are range conditions with a chosen selectivity, modelled
here by :class:`Interval`; generic comparisons and conjunctions cover the
Rete t-const conditions (``attribute op constant`` with op in
``{<, >, <=, >=, =, !=}``).

Interval extraction (:meth:`Predicate.interval_on`) serves two consumers:
the optimizer (to drive a B-tree interval scan) and the i-lock manager (the
paper's rule indexing sets locks on "index intervals inspected").
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.storage.columnar import vector_compare
from repro.storage.tuples import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.columnar import ColumnBatch

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    ">": operator.gt,
}

BoundMatcher = Callable[[Row], bool]

#: A compiled vectorized matcher: maps a :class:`ColumnBatch` to a boolean
#: mask over its rows, equivalent row-for-row to the bound scalar matcher.
BoundColumnMatcher = Callable[["ColumnBatch"], np.ndarray]


@dataclass(frozen=True)
class KeyInterval:
    """A (possibly unbounded, possibly degenerate) key range on one field."""

    field: str
    lo: Optional[Any] = None
    hi: Optional[Any] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies inside this key range."""
        if self.lo is not None:
            if self.lo_inclusive and value < self.lo:
                return False
            if not self.lo_inclusive and value <= self.lo:
                return False
        if self.hi is not None:
            if self.hi_inclusive and value > self.hi:
                return False
            if not self.hi_inclusive and value >= self.hi:
                return False
        return True

    def overlaps(self, other: "KeyInterval") -> bool:
        """True when the two ranges share at least one point (same field)."""
        if self.field != other.field:
            return False
        for left, right in ((self, other), (other, self)):
            if left.hi is not None and right.lo is not None:
                if left.hi < right.lo:
                    return False
                if left.hi == right.lo and not (
                    left.hi_inclusive and right.lo_inclusive
                ):
                    return False
        return True

    def contains_mask(self, column: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over a column array.

        Built from the same negated out-of-range comparisons as the scalar
        path, so edge values (NaN floats in particular, where every
        comparison is false) resolve identically.
        """
        mask = np.ones(len(column), dtype=bool)
        if self.lo is not None:
            op = "<" if self.lo_inclusive else "<="
            mask &= ~vector_compare(column, op, self.lo)
        if self.hi is not None:
            op = ">" if self.hi_inclusive else ">="
            mask &= ~vector_compare(column, op, self.hi)
        return mask

    @staticmethod
    def point(field: str, value: Any) -> "KeyInterval":
        return KeyInterval(field, lo=value, hi=value)

    @staticmethod
    def everything(field: str) -> "KeyInterval":
        return KeyInterval(field)


class Predicate:
    """Base class for all predicates."""

    def matches(self, row: Row, schema: Schema) -> bool:
        """Test one row (name resolution per call; prefer :meth:`bind`)."""
        raise NotImplementedError

    def bind(self, schema: Schema) -> BoundMatcher:
        """Compile to a positional matcher (resolves field names once)."""
        raise NotImplementedError

    def bind_columns(self, schema: Schema) -> BoundColumnMatcher:
        """Compile to a vectorized matcher over a :class:`ColumnBatch`.

        The default falls back to the scalar matcher row by row, so any
        predicate subclass is batch-evaluable; the concrete predicates
        below override it with genuinely vectorized numpy evaluators.
        """
        matcher = self.bind(schema)

        def fallback(batch: "ColumnBatch") -> np.ndarray:
            rows = batch.to_rows()
            return np.fromiter(
                (bool(matcher(row)) for row in rows),
                dtype=bool,
                count=len(rows),
            )

        return fallback

    def interval_on(self, field: str) -> Optional[KeyInterval]:
        """The key range this predicate restricts ``field`` to, if it is a
        simple range restriction on that field; ``None`` otherwise."""
        return None

    def conjuncts(self) -> list["Predicate"]:
        """This predicate as a list of top-level AND terms."""
        return [self]

    def fields(self) -> set[str]:
        """Names of all fields the predicate inspects."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (the empty qualification)."""

    def matches(self, row: Row, schema: Schema) -> bool:
        return True

    def bind(self, schema: Schema) -> BoundMatcher:
        return lambda row: True

    def bind_columns(self, schema: Schema) -> BoundColumnMatcher:
        return lambda batch: np.ones(len(batch), dtype=bool)

    def conjuncts(self) -> list[Predicate]:
        return []

    def fields(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``field op constant`` — the Rete t-const node condition."""

    field: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row, schema: Schema) -> bool:
        return _OPS[self.op](schema.value(row, self.field), self.value)

    def bind(self, schema: Schema) -> BoundMatcher:
        pos = schema.index_of(self.field)
        fn = _OPS[self.op]
        value = self.value
        return lambda row: fn(row[pos], value)

    def bind_columns(self, schema: Schema) -> BoundColumnMatcher:
        pos = schema.index_of(self.field)
        op = self.op
        value = self.value
        return lambda batch: vector_compare(batch.column_at(pos), op, value)

    def interval_on(self, field: str) -> Optional[KeyInterval]:
        if field != self.field:
            return None
        if self.op == "=":
            return KeyInterval.point(self.field, self.value)
        if self.op == "<":
            return KeyInterval(self.field, hi=self.value, hi_inclusive=False)
        if self.op == "<=":
            return KeyInterval(self.field, hi=self.value)
        if self.op == ">":
            return KeyInterval(self.field, lo=self.value, lo_inclusive=False)
        if self.op == ">=":
            return KeyInterval(self.field, lo=self.value)
        return None  # "!=" is not a contiguous range

    def fields(self) -> set[str]:
        return {self.field}


@dataclass(frozen=True)
class Interval(Predicate):
    """``lo <= field < hi`` (bounds configurable) — the paper's ``C_f``.

    The workload generator materialises a restriction of selectivity ``f``
    as an interval covering a fraction ``f`` of the field's domain.
    """

    field: str
    lo: Optional[Any] = None
    hi: Optional[Any] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = False

    def _interval(self) -> KeyInterval:
        return KeyInterval(
            self.field, self.lo, self.hi, self.lo_inclusive, self.hi_inclusive
        )

    def matches(self, row: Row, schema: Schema) -> bool:
        return self._interval().contains(schema.value(row, self.field))

    def bind(self, schema: Schema) -> BoundMatcher:
        pos = schema.index_of(self.field)
        interval = self._interval()
        return lambda row: interval.contains(row[pos])

    def bind_columns(self, schema: Schema) -> BoundColumnMatcher:
        pos = schema.index_of(self.field)
        interval = self._interval()
        return lambda batch: interval.contains_mask(batch.column_at(pos))

    def interval_on(self, field: str) -> Optional[KeyInterval]:
        if field != self.field:
            return None
        return self._interval()

    def fields(self) -> set[str]:
        return {self.field}


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    terms: tuple[Predicate, ...]

    def __init__(self, *terms: Predicate) -> None:
        flat: list[Predicate] = []
        for term in terms:
            if isinstance(term, And):
                flat.extend(term.terms)
            elif not isinstance(term, TruePredicate):
                flat.append(term)
        object.__setattr__(self, "terms", tuple(flat))

    def matches(self, row: Row, schema: Schema) -> bool:
        return all(term.matches(row, schema) for term in self.terms)

    def bind(self, schema: Schema) -> BoundMatcher:
        matchers = [term.bind(schema) for term in self.terms]
        if not matchers:
            return lambda row: True
        if len(matchers) == 1:
            return matchers[0]
        return lambda row: all(m(row) for m in matchers)

    def bind_columns(self, schema: Schema) -> BoundColumnMatcher:
        matchers = [term.bind_columns(schema) for term in self.terms]
        if not matchers:
            return lambda batch: np.ones(len(batch), dtype=bool)
        if len(matchers) == 1:
            return matchers[0]

        def conjunction(batch: "ColumnBatch") -> np.ndarray:
            mask = matchers[0](batch)
            for matcher in matchers[1:]:
                mask = mask & matcher(batch)
            return mask

        return conjunction

    def interval_on(self, field: str) -> Optional[KeyInterval]:
        hits = [
            iv
            for term in self.terms
            if (iv := term.interval_on(field)) is not None
        ]
        if len(hits) == 1:
            return hits[0]
        return None  # refuse to intersect; the optimizer treats extras as residual

    def conjuncts(self) -> list[Predicate]:
        out: list[Predicate] = []
        for term in self.terms:
            out.extend(term.conjuncts())
        return out

    def fields(self) -> set[str]:
        out: set[str] = set()
        for term in self.terms:
            out |= term.fields()
        return out


def conjoin(terms: list[Predicate]) -> Predicate:
    """Build the conjunction of ``terms`` (``TruePredicate`` when empty)."""
    terms = [t for t in terms if not isinstance(t, TruePredicate)]
    if not terms:
        return TruePredicate()
    if len(terms) == 1:
        return terms[0]
    return And(*terms)


# -- compile-once matcher caches ---------------------------------------------
#
# Binding resolves field names to positions and (for the vectorized path)
# assembles the evaluator closure; both are pure functions of the
# (predicate, schema) pair, so hot paths share one compiled matcher per
# pair instead of re-binding per update transaction. Bounded so pathological
# predicate churn (property tests) cannot grow without limit.

_MATCHER_CACHE_LIMIT = 4096
_matcher_cache: dict[tuple[Predicate, Schema], BoundMatcher] = {}
_column_matcher_cache: dict[tuple[Predicate, Schema], BoundColumnMatcher] = {}


def compiled_matcher(predicate: Predicate, schema: Schema) -> BoundMatcher:
    """A cached :meth:`Predicate.bind` result for this (predicate, schema)."""
    try:
        key = (predicate, schema)
        matcher = _matcher_cache.get(key)
    except TypeError:  # unhashable predicate value; bind uncached
        return predicate.bind(schema)
    if matcher is None:
        if len(_matcher_cache) >= _MATCHER_CACHE_LIMIT:
            _matcher_cache.clear()
        matcher = predicate.bind(schema)
        _matcher_cache[key] = matcher
    return matcher


def compiled_column_matcher(
    predicate: Predicate, schema: Schema
) -> BoundColumnMatcher:
    """A cached :meth:`Predicate.bind_columns` result for the pair."""
    try:
        key = (predicate, schema)
        matcher = _column_matcher_cache.get(key)
    except TypeError:
        return predicate.bind_columns(schema)
    if matcher is None:
        if len(_column_matcher_cache) >= _MATCHER_CACHE_LIMIT:
            _column_matcher_cache.clear()
        matcher = predicate.bind_columns(schema)
        _column_matcher_cache[key] = matcher
    return matcher
