"""A QUEL-style ``retrieve`` parser.

The paper writes database procedures in INGRES QUEL::

    retrieve (R1.all)
    where C_f(R1)

    retrieve (R1.fields, R2.fields)
    where R1.a = R2.b
    and C_f(R1) and C_f2(R2)

This module parses that surface syntax into the algebra the rest of the
system consumes, so procedures can be defined as strings::

    parse_retrieve('retrieve (EMP.all, DEPT.all) '
                   'where EMP.dept = DEPT.dname '
                   'and EMP.job = "Programmer" and DEPT.floor = 1')

Grammar (case-insensitive keywords)::

    query   := "retrieve" "(" target ("," target)* ")" ["where" term ("and" term)*]
    target  := NAME "." "all" | NAME "." NAME
    term    := operand OP operand
    operand := NAME "." NAME | NUMBER | STRING
    OP      := < | <= | = | != | >= | >

Relations join left-deep in order of first appearance; each relation after
the first must be connected to an earlier one by an equality join term.
Constant terms become selection predicates; if any target is a specific
field, the whole query is wrapped in a projection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.query.expr import Expression, Join, Project, RelationRef, Select
from repro.query.predicate import And, Comparison, Predicate, conjoin


class ParseError(ValueError):
    """Raised for malformed ``retrieve`` statements."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>"[^"]*"|'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|=|<|>)
      | (?P<punct>[().,])
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: Any


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(
                    f"unexpected character {text[pos]!r} at offset {pos}"
                )
            break
        pos = match.end()
        kind = match.lastgroup
        raw = match.group(kind)
        if kind == "string":
            tokens.append(_Token("literal", raw[1:-1]))
        elif kind == "number":
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("literal", value))
        elif kind == "name":
            tokens.append(_Token("name", raw))
        else:
            tokens.append(_Token(kind, raw))
    return tokens


@dataclass(frozen=True)
class _FieldRef:
    relation: str
    field: str


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of statement")
        self.pos += 1
        return token

    def _expect(self, kind: str, value: Any = None) -> _Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind}, got {token.value!r}"
            )
        return token

    def _keyword(self, word: str) -> bool:
        token = self._peek()
        if (
            token is not None
            and token.kind == "name"
            and token.value.lower() == word
        ):
            self.pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse(self) -> tuple[list[_FieldRef | str], list]:
        if not self._keyword("retrieve"):
            raise ParseError("statement must start with 'retrieve'")
        self._expect("punct", "(")
        targets = [self._target()]
        while self._peek() and self._peek().value == ",":
            self._next()
            targets.append(self._target())
        self._expect("punct", ")")
        terms = []
        if self._keyword("where"):
            terms.append(self._term())
            while self._keyword("and"):
                terms.append(self._term())
        if self._peek() is not None:
            raise ParseError(f"trailing input at {self._peek().value!r}")
        return targets, terms

    def _target(self):
        relation = self._expect("name").value
        self._expect("punct", ".")
        field = self._expect("name").value
        if field.lower() == "all":
            return relation  # whole-relation target
        return _FieldRef(relation, field)

    def _operand(self):
        token = self._next()
        if token.kind == "literal":
            return token.value
        if token.kind == "name":
            self._expect("punct", ".")
            field = self._expect("name").value
            return _FieldRef(token.value, field)
        raise ParseError(f"expected operand, got {token.value!r}")

    def _term(self):
        left = self._operand()
        op = self._expect("op").value
        right = self._operand()
        return (left, op, right)


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def parse_retrieve(text: str) -> Expression:
    """Parse a ``retrieve`` statement into an algebra expression."""
    targets, terms = _Parser(_tokenize(text)).parse()

    # Relations in order of first appearance in the target list.
    relations: list[str] = []
    projected: list[str] = []
    project_needed = False
    for target in targets:
        if isinstance(target, str):
            if target not in relations:
                relations.append(target)
        else:
            if target.relation not in relations:
                relations.append(target.relation)
            projected.append(target.field)
            project_needed = True
    if not relations:
        raise ParseError("no relations in target list")
    if project_needed and len(projected) != len(targets):
        raise ParseError(
            "mix of .all and specific fields in the target list is not "
            "supported; project every field explicitly or none"
        )

    # Split qualification terms into join edges and selections.
    joins: list[tuple[str, str, str, str]] = []  # (lrel, lfield, rrel, rfield)
    selections: list[Predicate] = []
    for left, op, right in terms:
        left_is_field = isinstance(left, _FieldRef)
        right_is_field = isinstance(right, _FieldRef)
        if left_is_field and right_is_field:
            if left.relation == right.relation:
                raise ParseError(
                    "same-relation field comparisons are not supported"
                )
            if op != "=":
                raise ParseError("join terms must use '='")
            for ref in (left, right):
                if ref.relation not in relations:
                    raise ParseError(
                        f"relation {ref.relation!r} appears in the "
                        "qualification but not the target list"
                    )
            joins.append((left.relation, left.field, right.relation, right.field))
        elif left_is_field or right_is_field:
            if not left_is_field:  # constant OP field -> flip
                left, right, op = right, left, _FLIP[op]
            if left.relation not in relations:
                raise ParseError(
                    f"relation {left.relation!r} appears in the "
                    "qualification but not the target list"
                )
            selections.append(Comparison(left.field, op, right))
        else:
            raise ParseError("constant-to-constant comparisons are useless")

    # Build the left-deep join tree in appearance order.
    expr: Expression = RelationRef(relations[0])
    attached = {relations[0]}
    pending = list(joins)
    for relation in relations[1:]:
        edge = None
        for candidate in pending:
            lrel, lfield, rrel, rfield = candidate
            if rrel == relation and lrel in attached:
                edge = (lfield, rfield)
            elif lrel == relation and rrel in attached:
                edge = (rfield, lfield)
            if edge is not None:
                pending.remove(candidate)
                break
        if edge is None:
            raise ParseError(
                f"relation {relation!r} is not connected to the preceding "
                "relations by a join term"
            )
        expr = Join(expr, RelationRef(relation), edge[0], edge[1])
        attached.add(relation)
    if pending:
        raise ParseError("extra join terms between already-joined relations")

    if selections:
        expr = Select(expr, conjoin(selections))
    if project_needed:
        expr = Project(expr, tuple(projected))
    return expr
