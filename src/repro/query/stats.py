"""Relation statistics and plan cost estimation.

The paper's strategies rely on *statically optimized* plans; this module
supplies the statistics and cost arithmetic that static optimization needs:
per-field min/max/distinct-count statistics (collected once, definition
time), selectivity estimation for the predicate language, and estimated
costs for every physical plan operator — computed with the same constants
and page math (Yao/Cardenas, B-tree heights) as the paper's analytical
model, so plan estimates and workload measurements share one currency.

The cost-based optimizer uses these to choose between a B-tree interval
scan and a sequential scan (an interval covering most of the domain is
cheaper to scan sequentially) and to report `explain`-style cost estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from repro.model.costs import btree_height
from repro.model.yao import yao
from repro.query.plan import (
    BTreeScanPlan,
    BuildHashJoinPlan,
    FilterPlan,
    HashLookupJoinPlan,
    Plan,
    ProjectPlan,
    SeqScanPlan,
)
from repro.query.predicate import Comparison, Interval, KeyInterval, Predicate
from repro.sim import CostParams
from repro.storage.catalog import Catalog, Relation


@dataclass(frozen=True)
class FieldStats:
    """Summary statistics for one field."""

    minimum: Any
    maximum: Any
    distinct: int

    @property
    def spread(self) -> Optional[float]:
        """Domain width for numeric fields (``None`` otherwise)."""
        if isinstance(self.minimum, (int, float)) and isinstance(
            self.maximum, (int, float)
        ):
            return float(self.maximum) - float(self.minimum)
        return None


@dataclass
class RelationStats:
    """Statistics for one relation, collected by one uncharged scan."""

    num_rows: int
    num_pages: int
    fields: dict[str, FieldStats]

    @staticmethod
    def collect(relation: Relation) -> "RelationStats":
        """Scan the relation (definition-time, uncharged) and summarise."""
        names = relation.schema.names()
        seen: dict[str, set] = {name: set() for name in names}
        minima: dict[str, Any] = {}
        maxima: dict[str, Any] = {}
        count = 0
        for _rid, row in relation.heap.scan_uncharged():
            count += 1
            for name, value in zip(names, row):
                seen[name].add(value)
                if name not in minima or value < minima[name]:
                    minima[name] = value
                if name not in maxima or value > maxima[name]:
                    maxima[name] = value
        fields = {
            name: FieldStats(
                minimum=minima.get(name),
                maximum=maxima.get(name),
                distinct=len(seen[name]),
            )
            for name in names
        }
        return RelationStats(
            num_rows=count, num_pages=relation.num_pages, fields=fields
        )

    # -- selectivity estimation ------------------------------------------------

    def _interval_selectivity(self, interval: KeyInterval) -> float:
        stats = self.fields.get(interval.field)
        if stats is None or stats.spread is None or self.num_rows == 0:
            return 0.5  # no information: the classic guess
        if interval.lo is not None and interval.lo == interval.hi:
            return 1.0 / max(1, stats.distinct)
        lo = interval.lo if interval.lo is not None else stats.minimum
        hi = interval.hi if interval.hi is not None else stats.maximum
        spread = stats.spread
        if spread <= 0:
            return 1.0
        width = max(0.0, float(hi) - float(lo))
        return min(1.0, width / spread)

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of rows satisfying ``predicate``
        (independence assumed across conjuncts)."""
        terms = predicate.conjuncts()
        if not terms:
            return 1.0
        estimate = 1.0
        for term in terms:
            if isinstance(term, Comparison) and term.op == "=":
                stats = self.fields.get(term.field)
                estimate *= 1.0 / max(1, stats.distinct) if stats else 0.1
                continue
            if isinstance(term, Comparison) and term.op == "!=":
                stats = self.fields.get(term.field)
                estimate *= 1.0 - (
                    1.0 / max(1, stats.distinct) if stats else 0.1
                )
                continue
            interval = None
            for field in (term.fields() or set()):
                interval = term.interval_on(field)
                if interval is not None:
                    break
            if interval is not None:
                estimate *= self._interval_selectivity(interval)
            else:
                estimate *= 0.5
        return max(0.0, min(1.0, estimate))


class CostEstimator:
    """Estimated cost (simulated ms) and cardinality of physical plans.

    Statistics are collected lazily per relation and cached; call
    :meth:`refresh` after bulk changes.
    """

    def __init__(self, catalog: Catalog, cost_params: CostParams | None = None) -> None:
        self.catalog = catalog
        self.costs = cost_params if cost_params is not None else CostParams()
        self._stats: dict[str, RelationStats] = {}

    def stats_for(self, relation_name: str) -> RelationStats:
        """Statistics for ``relation_name`` (collected once, then cached)."""
        stats = self._stats.get(relation_name)
        if stats is None:
            stats = RelationStats.collect(self.catalog.get(relation_name))
            self._stats[relation_name] = stats
        return stats

    def refresh(self, relation_name: str | None = None) -> None:
        """Drop cached statistics (all, or one relation's)."""
        if relation_name is None:
            self._stats.clear()
        else:
            self._stats.pop(relation_name, None)

    # -- per-operator estimates -----------------------------------------------

    def estimate(self, plan: Plan) -> tuple[float, float]:
        """Return ``(cost_ms, output_rows)`` for ``plan``."""
        if isinstance(plan, SeqScanPlan):
            return self._seq_scan(plan)
        if isinstance(plan, BTreeScanPlan):
            return self._btree_scan(plan)
        if isinstance(plan, HashLookupJoinPlan):
            return self._hash_lookup_join(plan)
        if isinstance(plan, BuildHashJoinPlan):
            return self._build_hash_join(plan)
        if isinstance(plan, FilterPlan):
            cost, rows = self.estimate(plan.child)
            stats = self._combined_stats(plan.child)
            sel = stats.selectivity(plan.predicate) if stats else 0.5
            return cost + self.costs.c1 * rows, rows * sel
        if isinstance(plan, ProjectPlan):
            cost, rows = self.estimate(plan.child)
            return cost, rows
        raise TypeError(f"no estimator for {type(plan).__name__}")

    def _combined_stats(self, plan: Plan) -> Optional[RelationStats]:
        """Stats to judge a residual over a plan's output: single-relation
        plans delegate to that relation; joins have no combined stats."""
        if isinstance(plan, (SeqScanPlan, BTreeScanPlan)):
            return self.stats_for(plan.relation)
        return None

    def _seq_scan(self, plan: SeqScanPlan) -> tuple[float, float]:
        stats = self.stats_for(plan.relation)
        sel = stats.selectivity(plan.predicate)
        cost = self.costs.c2 * stats.num_pages + self.costs.c1 * stats.num_rows
        return cost, stats.num_rows * sel

    def _btree_scan(self, plan: BTreeScanPlan) -> tuple[float, float]:
        stats = self.stats_for(plan.relation)
        relation = self.catalog.get(plan.relation)
        index = relation.btree_indexes[plan.index_field]
        interval_sel = stats._interval_selectivity(plan.interval)
        matching = stats.num_rows * interval_sel
        height = btree_height(max(matching, 1), index.fanout)
        leaf_pages = math.ceil(max(matching, 1) / index.fanout)
        # Clustered heap: matching tuples occupy contiguous pages.
        heap_pages = math.ceil(interval_sel * stats.num_pages) or 1
        cost = (
            self.costs.c2 * (height + leaf_pages + heap_pages)
            + self.costs.c1 * matching
        )
        residual_sel = stats.selectivity(plan.residual)
        return cost, matching * residual_sel

    def _hash_lookup_join(self, plan: HashLookupJoinPlan) -> tuple[float, float]:
        outer_cost, outer_rows = self.estimate(plan.outer)
        inner_stats = self.stats_for(plan.inner_relation)
        inner = self.catalog.get(plan.inner_relation)
        index = inner.hash_indexes[plan.inner_field]
        per_key = (
            index.num_entries / index.num_keys if index.num_keys else 1.0
        )
        matches = outer_rows * per_key
        pages = yao(
            inner_stats.num_rows, inner_stats.num_pages, max(matches, 0.0)
        )
        residual_sel = inner_stats.selectivity(plan.residual)
        cost = outer_cost + self.costs.c2 * pages + self.costs.c1 * matches
        return cost, matches * residual_sel

    def _build_hash_join(self, plan: BuildHashJoinPlan) -> tuple[float, float]:
        outer_cost, outer_rows = self.estimate(plan.outer)
        inner_stats = self.stats_for(plan.inner_relation)
        field_stats = inner_stats.fields.get(plan.inner_field)
        per_key = (
            inner_stats.num_rows / max(1, field_stats.distinct)
            if field_stats
            else 1.0
        )
        matches = outer_rows * per_key
        build = (
            self.costs.c2 * inner_stats.num_pages
            + self.costs.c1 * inner_stats.num_rows
        )
        residual_sel = inner_stats.selectivity(plan.residual)
        cost = outer_cost + build + self.costs.c1 * matches
        return cost, matches * residual_sel

    def explain_with_costs(self, plan: Plan, indent: int = 0) -> str:
        """The plan tree annotated with estimated cost and cardinality."""
        cost, rows = self.estimate(plan)
        pad = "  " * indent
        own = plan.explain(indent).splitlines()[0]
        lines = [f"{own}  [est {cost:.0f} ms, ~{rows:.0f} rows]"]
        for child_name in ("child", "outer"):
            child = getattr(plan, child_name, None)
            if isinstance(child, Plan):
                lines.append(self.explain_with_costs(child, indent + 1))
        return "\n".join(lines)
