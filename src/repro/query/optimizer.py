"""A static query optimizer for left-deep SPJ expressions.

The paper assumes "an optimized execution plan for the query(s) in the
procedure is compiled in advance and stored with the procedure". This
optimizer performs that one-time compilation:

1. normalise the expression (:mod:`repro.query.analysis`);
2. pick the driving relation's access path — a B-tree interval scan when a
   restriction supplies a key range on an indexed field, else a sequential
   scan;
3. attach each remaining relation with an index nested-loop join through its
   hash index (falling back to a build-side hash join when no index exists);
4. apply any cross-relation residual predicates last.

For the paper's procedures this yields exactly the plans §4.1/§6.1 cost out:
a B-tree scan of ``R1`` (``C1*fN + C2*ceil(f*b) + C2*H1``) followed by hash
probes into ``R2`` (``C1*fN + C2*Y1``) and, in model 2, ``R3``
(``C1*fN + C2*Y6``).
"""

from __future__ import annotations

from repro.query.analysis import NormalizationError, SPJQuery, normalize_spj
from repro.query.expr import Expression
from repro.query.plan import (
    BTreeScanPlan,
    BuildHashJoinPlan,
    FilterPlan,
    HashLookupJoinPlan,
    Plan,
    ProjectPlan,
    SeqScanPlan,
)
from repro.query.predicate import Predicate, conjoin
from repro.storage.catalog import Catalog

PlanningError = NormalizationError


class Optimizer:
    """Compiles :class:`Expression` trees into physical :class:`Plan` trees.

    Args:
        catalog: relations and their access methods.
        cost_based: when True (default), access paths are chosen by
            estimated cost (:class:`repro.query.stats.CostEstimator`) —
            e.g. an interval covering most of a relation compiles to a
            sequential scan even though a B-tree exists. When False, any
            usable index wins (the naive rule, kept for tests/ablation).
    """

    def __init__(self, catalog: Catalog, cost_based: bool = True) -> None:
        self.catalog = catalog
        self.cost_based = cost_based
        self._estimator = None

    @property
    def estimator(self):
        """The lazily created cost estimator (collects stats on demand)."""
        if self._estimator is None:
            from repro.query.stats import CostEstimator

            self._estimator = CostEstimator(self.catalog)
        return self._estimator

    def _access_path(self, relation_name: str, terms: list[Predicate]) -> Plan:
        relation = self.catalog.get(relation_name)
        candidates: list[Plan] = []
        for i, term in enumerate(terms):
            for field in relation.btree_indexes:
                interval = term.interval_on(field)
                if interval is not None:
                    residual = conjoin(terms[:i] + terms[i + 1 :])
                    candidates.append(
                        BTreeScanPlan(relation_name, field, interval, residual)
                    )
        seq = SeqScanPlan(relation_name, conjoin(terms))
        if not candidates:
            return seq
        if not self.cost_based:
            return candidates[0]
        candidates.append(seq)
        return min(candidates, key=lambda plan: self.estimator.estimate(plan)[0])

    def compile_normalized(self, query: SPJQuery) -> Plan:
        """Physical plan for an already-normalised query."""
        driver = query.relations[0]
        plan: Plan = self._access_path(
            driver, query.restrictions.get(driver, [])
        )
        for edge in query.joins:
            inner = self.catalog.get(edge.inner_relation)
            residual = query.restriction_of(edge.inner_relation)
            if edge.inner_field in inner.hash_indexes:
                plan = HashLookupJoinPlan(
                    outer=plan,
                    inner_relation=edge.inner_relation,
                    inner_field=edge.inner_field,
                    outer_field=edge.outer_field,
                    residual=residual,
                )
            else:
                plan = BuildHashJoinPlan(
                    outer=plan,
                    inner_relation=edge.inner_relation,
                    inner_field=edge.inner_field,
                    outer_field=edge.outer_field,
                    residual=residual,
                )
        if query.residuals:
            plan = FilterPlan(plan, conjoin(query.residuals))
        if query.projection is not None:
            plan = ProjectPlan(plan, query.projection)
        return plan

    def compile(self, expr: Expression) -> Plan:
        """Compile ``expr`` into a physical plan (raises
        :class:`PlanningError` for unsupported shapes)."""
        return self.compile_normalized(normalize_spj(expr, self.catalog))
