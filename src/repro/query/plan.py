"""Physical query plans.

Each plan node executes against an :class:`repro.query.executor.
ExecutionContext` (catalog + cost clock + optional i-lock sink) and returns
materialised rows. Cost charging follows the paper's accounting:

- every tuple screened against a predicate costs ``C1``;
- every page touched costs ``C2`` (charged by the storage layer);
- a B-tree descent costs ``C2 * height`` (charged by the index);
- batched heap fetches read each distinct page once, so measured page counts
  match the Yao-function expectations in the cost model.

When the context carries a lock sink, operators report everything they read
— the rule-indexing footprint used by Cache and Invalidate's i-locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.query.predicate import (
    KeyInterval,
    Predicate,
    TruePredicate,
    compiled_column_matcher,
)
from repro.storage.columnar import ColumnBatch, columnar_enabled
from repro.storage.page import RID
from repro.storage.tuples import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.executor import ExecutionContext


@dataclass(frozen=True)
class LockSpec:
    """One unit of read footprint: a key range of a relation.

    ``interval=None`` means the whole relation was read (sequential scan).
    A degenerate interval (``lo == hi``) is a point lock from a hash probe.
    """

    relation: str
    interval: Optional[KeyInterval] = None

    def conflicts_with_write(
        self, relation: str, field_values: dict[str, Any]
    ) -> bool:
        """Does writing a tuple with ``field_values`` conflict with this
        lock? Used by the i-lock table to find invalidated procedures."""
        if relation != self.relation:
            return False
        if self.interval is None:
            return True
        value = field_values.get(self.interval.field)
        if value is None:
            return False
        return self.interval.contains(value)


class Plan:
    """Base class for physical operators."""

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        """Run the operator, charging ``ctx.clock``; returns result rows."""
        raise NotImplementedError

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        """Schema of the rows :meth:`execute` produces."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree rendering."""
        raise NotImplementedError


@dataclass(frozen=True)
class SeqScanPlan(Plan):
    """Full scan of a relation with an optional filter."""

    relation: str
    predicate: Predicate = TruePredicate()

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        relation = ctx.catalog.get(self.relation)
        if ctx.lock_sink is not None:
            ctx.lock_sink.append(LockSpec(self.relation, None))
        if columnar_enabled():
            # Same page fetches and C1-per-row total as the scalar loop,
            # charged per page batch instead of per tuple.
            matcher = compiled_column_matcher(self.predicate, relation.schema)
            out: list[Row] = []
            for _page_no, _slots, batch in relation.heap.scan_batches():
                n = len(batch)
                if not n:
                    continue
                ctx.clock.charge_cpu(n)
                out.extend(batch.select(matcher(batch)))
            return out
        matcher = self.predicate.bind(relation.schema)
        out = []
        for _rid, row in relation.scan():
            ctx.clock.charge_cpu(1)
            if matcher(row):
                out.append(row)
        return out

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        return ctx.catalog.get(self.relation).schema

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}SeqScan({self.relation}, {self.predicate!r})"


@dataclass(frozen=True)
class BTreeScanPlan(Plan):
    """Interval scan via a B-tree index, plus a residual filter.

    Cost profile (matching ``C_queryP1``): ``C2 * height`` for the descent,
    one ``C2`` per leaf page walked, one ``C2`` per distinct heap page
    fetched, and ``C1`` per retrieved tuple screened.
    """

    relation: str
    index_field: str
    interval: KeyInterval
    residual: Predicate = TruePredicate()

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        relation = ctx.catalog.get(self.relation)
        index = relation.btree_indexes[self.index_field]
        if ctx.lock_sink is not None:
            ctx.lock_sink.append(LockSpec(self.relation, self.interval))
        rids = [
            rid
            for _key, rid in index.range_scan(
                self.interval.lo,
                self.interval.hi,
                self.interval.lo_inclusive,
                self.interval.hi_inclusive,
            )
        ]
        fetched = [row for _rid, row in relation.fetch_batched(rids)]
        if columnar_enabled():
            if fetched:
                ctx.clock.charge_cpu(len(fetched))
                if isinstance(self.residual, TruePredicate):
                    return fetched
                batch = ColumnBatch(relation.schema, fetched)
                matcher = compiled_column_matcher(
                    self.residual, relation.schema
                )
                return batch.select(matcher(batch))
            return []
        matcher = self.residual.bind(relation.schema)
        out: list[Row] = []
        for row in fetched:
            ctx.clock.charge_cpu(1)
            if matcher(row):
                out.append(row)
        return out

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        return ctx.catalog.get(self.relation).schema

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}BTreeScan({self.relation}.{self.index_field} in "
            f"[{self.interval.lo}, {self.interval.hi}], "
            f"residual={self.residual!r})"
        )


@dataclass(frozen=True)
class HashLookupJoinPlan(Plan):
    """Index nested-loop join: probe the inner relation's hash index with
    each outer row's join key.

    Cost profile (matching the ``C1*fN + C2*Y1`` join terms): probes touch
    each distinct inner heap page once — the Yao count — and each joined
    candidate pair costs one ``C1`` screen (join qualification plus the
    inner residual such as ``C_f2(R2)``).
    """

    outer: Plan
    inner_relation: str
    inner_field: str
    outer_field: str
    residual: Predicate = TruePredicate()

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        outer_rows = self.outer.execute(ctx)
        inner = ctx.catalog.get(self.inner_relation)
        index = inner.hash_indexes[self.inner_field]
        outer_schema = self.outer.output_schema(ctx)
        key_pos = outer_schema.index_of(self.outer_field)

        pairs: list[tuple[Row, RID]] = []
        probed_keys: set[Any] = set()
        for outer_row in outer_rows:
            key = outer_row[key_pos]
            probed_keys.add(key)
            for rid in index.probe(key):
                pairs.append((outer_row, rid))
        if ctx.lock_sink is not None:
            for key in sorted(probed_keys):
                ctx.lock_sink.append(
                    LockSpec(
                        self.inner_relation,
                        KeyInterval.point(self.inner_field, key),
                    )
                )

        inner_rows = dict(inner.fetch_batched(sorted({rid for _o, rid in pairs})))
        combined_schema = self.output_schema(ctx)
        if columnar_enabled():
            if not pairs:
                return []
            combined_rows = [
                outer_row + inner_rows[rid] for outer_row, rid in pairs
            ]
            ctx.clock.charge_cpu(len(combined_rows))
            if isinstance(self.residual, TruePredicate):
                return combined_rows
            batch = ColumnBatch(combined_schema, combined_rows)
            matcher = compiled_column_matcher(self.residual, combined_schema)
            return batch.select(matcher(batch))
        matcher = self.residual.bind(combined_schema)
        out: list[Row] = []
        for outer_row, rid in pairs:
            combined = outer_row + inner_rows[rid]
            ctx.clock.charge_cpu(1)
            if matcher(combined):
                out.append(combined)
        return out

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        return self.outer.output_schema(ctx).concat(
            ctx.catalog.get(self.inner_relation).schema
        )

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}HashLookupJoin({self.outer_field} = "
            f"{self.inner_relation}.{self.inner_field}, "
            f"residual={self.residual!r})\n"
            + self.outer.explain(indent + 1)
        )


@dataclass(frozen=True)
class BuildHashJoinPlan(Plan):
    """Classic hash join used when the inner relation has no suitable index:
    scan the inner once, build an in-memory table, probe with outer rows."""

    outer: Plan
    inner_relation: str
    inner_field: str
    outer_field: str
    residual: Predicate = TruePredicate()

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        inner = ctx.catalog.get(self.inner_relation)
        if ctx.lock_sink is not None:
            ctx.lock_sink.append(LockSpec(self.inner_relation, None))
        inner_pos = inner.schema.index_of(self.inner_field)
        table: dict[Any, list[Row]] = {}
        for _rid, row in inner.scan():
            ctx.clock.charge_cpu(1)
            table.setdefault(row[inner_pos], []).append(row)

        outer_rows = self.outer.execute(ctx)
        outer_schema = self.outer.output_schema(ctx)
        key_pos = outer_schema.index_of(self.outer_field)
        if columnar_enabled():
            combined_rows = [
                outer_row + inner_row
                for outer_row in outer_rows
                for inner_row in table.get(outer_row[key_pos], ())
            ]
            if not combined_rows:
                return []
            ctx.clock.charge_cpu(len(combined_rows))
            if isinstance(self.residual, TruePredicate):
                return combined_rows
            combined_schema = self.output_schema(ctx)
            batch = ColumnBatch(combined_schema, combined_rows)
            matcher = compiled_column_matcher(self.residual, combined_schema)
            return batch.select(matcher(batch))
        matcher = self.residual.bind(self.output_schema(ctx))
        out: list[Row] = []
        for outer_row in outer_rows:
            for inner_row in table.get(outer_row[key_pos], ()):
                combined = outer_row + inner_row
                ctx.clock.charge_cpu(1)
                if matcher(combined):
                    out.append(combined)
        return out

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        return self.outer.output_schema(ctx).concat(
            ctx.catalog.get(self.inner_relation).schema
        )

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}BuildHashJoin({self.outer_field} = "
            f"{self.inner_relation}.{self.inner_field})\n"
            + self.outer.explain(indent + 1)
        )


@dataclass(frozen=True)
class ProjectPlan(Plan):
    """Projection over a child plan's output.

    Output tuple width scales with the retained fraction of columns (at
    least one byte), so cached projected results occupy proportionally
    fewer pages.
    """

    child: Plan
    fields: tuple[str, ...]

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        schema = self.child.output_schema(ctx)
        positions = [schema.index_of(name) for name in self.fields]
        return [
            tuple(row[pos] for pos in positions)
            for row in self.child.execute(ctx)
        ]

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        child_schema = self.child.output_schema(ctx)
        kept = [child_schema.field(name) for name in self.fields]
        width = max(
            1,
            round(
                child_schema.tuple_bytes * len(kept) / len(child_schema.fields)
            ),
        )
        return Schema(kept, tuple_bytes=width)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Project({', '.join(self.fields)})\n" + self.child.explain(
            indent + 1
        )


@dataclass(frozen=True)
class FilterPlan(Plan):
    """A residual filter over any child plan's output."""

    child: Plan
    predicate: Predicate

    def execute(self, ctx: "ExecutionContext") -> list[Row]:
        schema = self.child.output_schema(ctx)
        child_rows = self.child.execute(ctx)
        if columnar_enabled():
            if not child_rows:
                return []
            ctx.clock.charge_cpu(len(child_rows))
            batch = ColumnBatch(schema, child_rows)
            matcher = compiled_column_matcher(self.predicate, schema)
            return batch.select(matcher(batch))
        matcher = self.predicate.bind(schema)
        out: list[Row] = []
        for row in child_rows:
            ctx.clock.charge_cpu(1)
            if matcher(row):
                out.append(row)
        return out

    def output_schema(self, ctx: "ExecutionContext") -> Schema:
        return self.child.output_schema(ctx)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Filter({self.predicate!r})\n" + self.child.explain(indent + 1)
