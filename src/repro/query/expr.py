"""Relational-algebra expressions.

The logical form of a database procedure's query. The paper's two procedure
types are::

    P1:  Select(R1, C_f)
    P2 (model 1):  Select(Join(R1, R2, a=b), C_f and C_f2)
    P2 (model 2):  Select(Join(Join(R1, R2, a=b), R3, c=d), C_f and C_f2)

Expressions are immutable and hashable so the Rete builder can detect shared
subexpressions structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.predicate import Predicate


class Expression:
    """Base class for algebra nodes."""

    def relations(self) -> set[str]:
        """Names of all base relations referenced."""
        raise NotImplementedError


@dataclass(frozen=True)
class RelationRef(Expression):
    """A base relation by name."""

    name: str

    def relations(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Select(Expression):
    """Restriction: rows of ``child`` satisfying ``predicate``.

    Field names in the predicate refer to the child's output schema (base
    relation fields; join outputs concatenate schemas, right-side clashes
    suffixed ``_r``).
    """

    child: Expression
    predicate: Predicate

    def relations(self) -> set[str]:
        return self.child.relations()


@dataclass(frozen=True)
class Project(Expression):
    """Projection: the named fields of ``child``'s output, in order.

    The paper's procedures "retrieve (R1.fields, R2.fields)"; projection
    restricts which columns the procedure returns. It must be the
    *outermost* node of a procedure expression — maintenance layers store
    full rows (so deletions stay identifiable) and project on access.
    """

    child: Expression
    fields: tuple[str, ...]

    def __init__(self, child: Expression, fields) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "fields", tuple(fields))
        if not self.fields:
            raise ValueError("projection needs at least one field")
        if len(set(self.fields)) != len(self.fields):
            raise ValueError(f"duplicate projected fields in {self.fields}")

    def relations(self) -> set[str]:
        return self.child.relations()


@dataclass(frozen=True)
class Join(Expression):
    """Equijoin: ``left.left_field = right.right_field``."""

    left: Expression
    right: Expression
    left_field: str
    right_field: str

    def relations(self) -> set[str]:
        return self.left.relations() | self.right.relations()


def describe(expr: Expression) -> str:
    """A compact human-readable rendering (used in plan explanations)."""
    if isinstance(expr, RelationRef):
        return expr.name
    if isinstance(expr, Select):
        return f"sigma[{expr.predicate!r}]({describe(expr.child)})"
    if isinstance(expr, Project):
        return f"pi[{', '.join(expr.fields)}]({describe(expr.child)})"
    if isinstance(expr, Join):
        return (
            f"({describe(expr.left)} |><| {describe(expr.right)} "
            f"on {expr.left_field}={expr.right_field})"
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")
