"""Query processing: predicates, relational algebra, plans, optimizer.

The paper's procedures are select-project-join (SPJ) queries over ``R1``,
``R2``, ``R3``. This package compiles such queries (expressed as a small
relational algebra) into physical plans — B-tree interval scans, sequential
scans, index nested-loop joins — whose execution charges the shared cost
clock exactly the I/Os and predicate tests the paper's formulas count.

Plans are *statically optimized*: compiled once when a procedure is defined,
then executed without further planning, matching the paper's assumption that
"an optimized execution plan ... is compiled in advance and stored with the
procedure".
"""

from repro.query.predicate import (
    And,
    Comparison,
    Interval,
    Predicate,
    TruePredicate,
)
from repro.query.expr import Expression, Join, Project, RelationRef, Select
from repro.query.plan import (
    BTreeScanPlan,
    HashLookupJoinPlan,
    LockSpec,
    Plan,
    ProjectPlan,
    SeqScanPlan,
)
from repro.query.executor import ExecutionContext, execute_plan
from repro.query.optimizer import Optimizer, PlanningError
from repro.query.stats import CostEstimator, FieldStats, RelationStats
from repro.query.parser import ParseError, parse_retrieve

__all__ = [
    "And",
    "Comparison",
    "Interval",
    "Predicate",
    "TruePredicate",
    "Expression",
    "Join",
    "Project",
    "RelationRef",
    "Select",
    "Plan",
    "SeqScanPlan",
    "BTreeScanPlan",
    "HashLookupJoinPlan",
    "ProjectPlan",
    "LockSpec",
    "ExecutionContext",
    "execute_plan",
    "Optimizer",
    "PlanningError",
    "CostEstimator",
    "RelationStats",
    "FieldStats",
    "parse_retrieve",
    "ParseError",
]
