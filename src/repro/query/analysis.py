"""Normalisation of SPJ expressions.

Both compilers in this system — the physical-plan optimizer (used by Always
Recompute, Cache and Invalidate, and AVM) and the Rete network builder (used
by RVM) — consume the same normal form: an ordered list of base relations,
the restriction predicates owned by each, and the chain of equijoin edges
connecting them. :func:`normalize_spj` produces it from an algebra tree.

Field names must be globally unique across the joined relations so that
restriction ownership is unambiguous; the synthetic workload's schemas
guarantee this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.expr import Expression, Join, Project, RelationRef, Select
from repro.query.predicate import Predicate, conjoin
from repro.storage.catalog import Catalog


class NormalizationError(ValueError):
    """Raised when an expression is not a supported SPJ shape."""


@dataclass(frozen=True)
class JoinEdge:
    """``outer.outer_field = inner.inner_field`` where ``outer`` is the
    already-joined prefix and ``inner`` is the relation being attached."""

    outer_field: str
    inner_relation: str
    inner_field: str


@dataclass
class SPJQuery:
    """The normal form of a procedure's query.

    Attributes:
        relations: base relations in join order; ``relations[0]`` drives.
        restrictions: per-relation single-relation predicate terms.
        joins: one edge per relation after the first, in attach order.
        residuals: predicate terms spanning multiple relations (rare; the
            paper's procedures have none).
        projection: output fields, or ``None`` for ``retrieve (*.all)``.
    """

    relations: list[str]
    restrictions: dict[str, list[Predicate]] = field(default_factory=dict)
    joins: list[JoinEdge] = field(default_factory=list)
    residuals: list[Predicate] = field(default_factory=list)
    projection: tuple[str, ...] | None = None

    def restriction_of(self, relation: str) -> Predicate:
        """The conjunction of ``relation``'s restriction terms."""
        return conjoin(self.restrictions.get(relation, []))

    @property
    def num_joins(self) -> int:
        return len(self.joins)


def _field_owner(catalog: Catalog, field_name: str, relations: list[str]) -> str:
    owners = [
        name
        for name in relations
        if catalog.get(name).schema.has_field(field_name)
    ]
    if len(owners) != 1:
        raise NormalizationError(
            f"field {field_name!r} owned by {owners or 'no relation'}; "
            "join field names must be globally unique"
        )
    return owners[0]


def normalize_spj(expr: Expression, catalog: Catalog) -> SPJQuery:
    """Normalise a left-deep SPJ expression (raises
    :class:`NormalizationError` for unsupported shapes, including repeated
    relations — self-joins are out of scope for this reproduction)."""
    query = SPJQuery(relations=[])

    # Projection must be outermost; peel it before walking.
    if isinstance(expr, Project):
        query.projection = expr.fields
        expr = expr.child

    def classify(pred: Predicate) -> None:
        for term in pred.conjuncts():
            owners = {
                _field_owner(catalog, f, query.relations) for f in term.fields()
            }
            if len(owners) == 1:
                query.restrictions.setdefault(owners.pop(), []).append(term)
            else:
                query.residuals.append(term)

    def walk(node: Expression) -> None:
        if isinstance(node, Project):
            raise NormalizationError(
                "projection must be the outermost expression node"
            )
        if isinstance(node, RelationRef):
            if node.name not in catalog:
                raise NormalizationError(f"unknown relation {node.name!r}")
            if node.name in query.relations:
                raise NormalizationError(
                    f"relation {node.name!r} appears twice (self-joins "
                    "are unsupported)"
                )
            query.relations.append(node.name)
            return
        if isinstance(node, Select):
            walk(node.child)
            classify(node.predicate)
            return
        if isinstance(node, Join):
            walk(node.left)
            inner = node.right
            inner_pred: Predicate | None = None
            if isinstance(inner, Select):
                inner_pred = inner.predicate
                inner = inner.child
            if not isinstance(inner, RelationRef):
                raise NormalizationError(
                    "only left-deep join trees are supported"
                )
            walk(inner)
            if inner_pred is not None:
                classify(inner_pred)
            query.joins.append(
                JoinEdge(
                    outer_field=node.left_field,
                    inner_relation=inner.name,
                    inner_field=node.right_field,
                )
            )
            return
        raise NormalizationError(
            f"unknown expression node {type(node).__name__}"
        )

    walk(expr)
    return query
