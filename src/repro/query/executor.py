"""Plan execution context and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.query.plan import LockSpec, Plan
from repro.sim import CostClock
from repro.storage.catalog import Catalog
from repro.storage.tuples import Row


@dataclass
class ExecutionContext:
    """Everything a plan needs to run.

    Attributes:
        catalog: name -> relation resolution.
        clock: the shared cost clock (CPU charges are made here; page I/O is
            charged by the storage layer, which holds the same clock).
        lock_sink: when set, operators append a :class:`LockSpec` for
            everything they read — the i-lock footprint of the execution.
    """

    catalog: Catalog
    clock: CostClock
    lock_sink: Optional[list[LockSpec]] = None


@dataclass
class ExecutionResult:
    """Rows plus the cost charged to produce them."""

    rows: list[Row]
    cost_ms: float
    locks: list[LockSpec] = field(default_factory=list)


def execute_plan(
    plan: Plan,
    catalog: Catalog,
    clock: CostClock,
    collect_locks: bool = False,
    procedure: Optional[str] = None,
) -> ExecutionResult:
    """Run ``plan`` and report rows, cost, and (optionally) read footprint.

    ``procedure`` tags the execution for cost attribution when a tracer
    is observing the clock: charges keep their natural phases (scan reads
    are ``io.read``, screens ``predicate.test``) but are credited to that
    procedure. Unobserved runs ignore the tag entirely.
    """
    sink: Optional[list[LockSpec]] = [] if collect_locks else None
    ctx = ExecutionContext(catalog=catalog, clock=clock, lock_sink=sink)
    before = clock.snapshot()
    tracer = clock.tracer
    if tracer is None:
        rows = plan.execute(ctx)
    else:
        with tracer.span(None, procedure=procedure):
            rows = plan.execute(ctx)
    return ExecutionResult(
        rows=rows,
        cost_ms=clock.elapsed_since(before),
        locks=sink if sink is not None else [],
    )
