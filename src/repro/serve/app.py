"""The asyncio serving tier: procedure access over HTTP-shaped routes.

A FastAPI-style router (method + ``/path/{param}`` templates) with no
framework dependency: :meth:`ProcedureApp.handle` is the ASGI-equivalent
entry point, taking ``(method, path, body)`` and returning a
:class:`Response`. Two resources map the paper's workload onto a service
surface:

- ``GET /procedures/{name}`` — read one procedure's value through the
  front-tier :class:`repro.serve.cache.ResultCache`; misses recompute
  through the engine (charging the simulated clock), hits are free.
- ``POST /updates`` — one seeded update transaction against a base
  relation, flowing through the engine's maintenance *and* the cache's
  invalidation index via :attr:`ProcedureManager.update_listener`.

Backpressure is MPL-style admission control reusing
:class:`repro.concurrent.admission.AdmissionGate`: a request that cannot
claim a slot after bounded retries is refused with **429** (plus a
``retry_after_ms`` hint from the gate); engine failures surface as
**503** rather than a stack trace. Handlers do their engine work
synchronously after a single post-admission yield point, so the event
loop interleaves admissions but executes engine operations in arrival
order — request streams replay deterministically.
"""

from __future__ import annotations

import asyncio
import random
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Awaitable, Callable, Optional

from repro.concurrent.admission import AdmissionGate
from repro.serve.cache import ResultCache, canonical_key, canonical_rows
from repro.workload.runner import _perform_update

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manager import ProcedureManager
    from repro.workload.database import SyntheticDatabase

_UPDATE_RELATIONS = ("R1", "R2", "R3")


@dataclass
class Response:
    """One HTTP-shaped reply."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[dict[str, str], Optional[dict]], Awaitable[Response]]


class Router:
    """Method + path-template dispatch (``/procedures/{name}``)."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, "re.Pattern[str]", Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        regex = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def get(self, pattern: str, handler: Handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.add("POST", pattern, handler)

    def match(
        self, method: str, path: str
    ) -> Optional[tuple[Handler, dict[str, str]]]:
        for route_method, regex, handler in self._routes:
            if route_method != method.upper():
                continue
            hit = regex.match(path)
            if hit is not None:
                return handler, hit.groupdict()
        return None


class ProcedureApp:
    """The serving app: routes + cache + admission over one engine."""

    def __init__(
        self,
        manager: "ProcedureManager",
        db: "SyntheticDatabase",
        cache: ResultCache,
        max_inflight: int | None = None,
        admission_retries: int = 8,
        seed: int = 0,
    ) -> None:
        self.manager = manager
        self.db = db
        self.cache = cache
        self.gate = (
            AdmissionGate(max_inflight) if max_inflight is not None else None
        )
        self.admission_retries = admission_retries
        self._rng = random.Random(seed + 17)
        self._next_request = 0
        self.rejected_429 = 0
        self.failed_503 = 0
        self.status_counts: dict[int, int] = {}
        # Every defined procedure is cacheable; its footprint comes from
        # the bound query.
        for procedure in manager.strategy.procedures.values():
            cache.register(procedure)
        # The cache rides the same update stream as the i-lock sweep.
        manager.update_listener = cache.on_update
        self.router = Router()
        self.router.get("/healthz", self._get_health)
        self.router.get("/stats", self._get_stats)
        self.router.get("/procedures/{name}", self._get_procedure)
        self.router.post("/updates", self._post_update)

    # -- entry point -------------------------------------------------------

    async def handle(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Response:
        matched = self.router.match(method, path)
        if matched is None:
            return self._finish(
                Response(404, {"error": f"no route {method} {path}"})
            )
        handler, params = matched
        self._next_request += 1
        session = f"req-{self._next_request}"
        if self.gate is None:
            return self._finish(await self._invoke(handler, params, body))
        if not await self._admit(session):
            self.rejected_429 += 1
            return self._finish(
                Response(
                    429,
                    {
                        "error": "admission control: engine at MPL",
                        "retry_after_ms": self.gate.retry_delay_ms,
                    },
                )
            )
        try:
            # One yield point while holding the slot: concurrent arrivals
            # contend for the remaining slots before this request's
            # engine work runs, so the gate actually fills under bursts.
            await asyncio.sleep(0)
            return self._finish(await self._invoke(handler, params, body))
        finally:
            self.gate.release(session)

    async def _admit(self, session: str) -> bool:
        assert self.gate is not None
        for _ in range(self.admission_retries + 1):
            if self.gate.try_admit(session):
                return True
            await asyncio.sleep(0)
        return False

    async def _invoke(
        self, handler: Handler, params: dict[str, str], body: Optional[dict]
    ) -> Response:
        try:
            return await handler(params, body)
        except Exception as exc:  # engine fault → graceful 503
            self.failed_503 += 1
            return Response(
                503, {"error": f"engine unavailable: {exc}"}
            )

    def _finish(self, response: Response) -> Response:
        self.status_counts[response.status] = (
            self.status_counts.get(response.status, 0) + 1
        )
        return response

    # -- handlers ----------------------------------------------------------

    async def _get_health(
        self, params: dict[str, str], body: Optional[dict]
    ) -> Response:
        return Response(200, {"status": "ok"})

    async def _get_stats(
        self, params: dict[str, str], body: Optional[dict]
    ) -> Response:
        return Response(
            200,
            {
                "cache": self.cache.stats(),
                "admission": (
                    self.gate.stats() if self.gate is not None else None
                ),
                "rejected_429": self.rejected_429,
                "failed_503": self.failed_503,
                "clock_ms": self.manager.clock.elapsed_ms,
            },
        )

    async def _get_procedure(
        self, params: dict[str, str], body: Optional[dict]
    ) -> Response:
        name = canonical_key(params["name"])
        if name not in self.manager.strategy.procedures:
            return Response(404, {"error": f"unknown procedure {name!r}"})
        rows, mode = self.cache.get_or_compute(
            name, lambda: canonical_rows(self.manager.access(name).rows)
        )
        return Response(
            200,
            {
                "procedure": name,
                "mode": mode,
                "rows": [list(row) for row in rows],
            },
        )

    async def _post_update(
        self, params: dict[str, str], body: Optional[dict]
    ) -> Response:
        body = body or {}
        relation = body.get("relation", "R1")
        if relation not in _UPDATE_RELATIONS:
            return Response(
                400,
                {
                    "error": f"unknown relation {relation!r}; "
                    f"choose from {list(_UPDATE_RELATIONS)}"
                },
            )
        tuples = int(body.get("tuples", 10))
        if tuples < 1:
            return Response(400, {"error": "tuples must be >= 1"})
        before_invalidations = self.cache.invalidations
        _perform_update(
            self.db, self.manager, self._rng, tuples, relation=relation
        )
        return Response(
            200,
            {
                "relation": relation,
                "tuples": tuples,
                "invalidations": (
                    self.cache.invalidations - before_invalidations
                ),
            },
        )
