"""The front-tier serving layer: result cache + asyncio service.

The millions-of-users scenario from the ROADMAP: an HTTP-shaped app
(:mod:`repro.serve.app`) in front of the engine, reading through a
normalized-key result cache (:mod:`repro.serve.cache`) whose
interval/table invalidation rides the same update stream that feeds the
i-lock tables, with MPL-style admission control mapped to 429/503.
:mod:`repro.serve.load` drives it open-loop and replays the runner's
workload differentially (cache-on vs cache-off must match).
"""

from repro.serve.app import ProcedureApp, Response, Router
from repro.serve.cache import (
    Footprint,
    IntervalStabber,
    ResultCache,
    canonical_key,
    canonical_rows,
    footprint_of,
)
from repro.serve.load import (
    ServedRunResult,
    ServeLoadResult,
    build_serving_stack,
    plan_requests,
    run_serve_load,
    run_served_workload,
)

__all__ = [
    "Footprint",
    "IntervalStabber",
    "ProcedureApp",
    "Response",
    "ResultCache",
    "Router",
    "ServeLoadResult",
    "ServedRunResult",
    "build_serving_stack",
    "canonical_key",
    "canonical_rows",
    "footprint_of",
    "plan_requests",
    "run_serve_load",
    "run_served_workload",
]
