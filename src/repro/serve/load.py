"""Load generation for the serving tier, in two modes.

- :func:`run_serve_load` — the **open-loop wall-clock driver**: a seeded
  Zipf-skewed request plan fired at the asyncio app (optionally at a
  target arrival rate, arrivals independent of completions), reporting
  real throughput and latency percentiles alongside the simulated-clock
  totals. This feeds the ``serve`` CLI and the wall-clock bench lane.
- :func:`run_served_workload` — the **differential replay**: the exact
  operation stream :func:`repro.workload.runner.run_workload` would
  execute (same database build, warm-up, rng streams, and generator),
  served through the front-tier cache (or not), recording every access's
  ``(procedure, rows)``. Cache-on and cache-off replays of the same seed
  must produce identical logs — the headline correctness harness.

The replay is deliberately synchronous: determinism needs no event loop,
and the app's handlers execute engine work in arrival order anyway.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core import ProcedureManager
from repro.serve.app import ProcedureApp
from repro.serve.cache import ResultCache, canonical_rows
from repro.workload.database import build_database
from repro.workload.generator import OperationKind, generate_operations
from repro.workload.procedures import build_procedures
from repro.workload.runner import _perform_update, make_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.params import ModelParams
    from repro.obs.registry import MetricsRegistry
    from repro.obs.telemetry import TelemetryBus


def build_serving_stack(
    params: "ModelParams",
    strategy_name: str,
    model: int = 1,
    seed: int = 0,
    shards: Optional[int] = None,
    capacity: int = 256,
    ttl_ms: Optional[float] = None,
    max_inflight: Optional[int] = None,
    audit: bool = False,
    warm_caches: bool = True,
    invalidation_scheme: Optional[str] = None,
    registry: "MetricsRegistry | None" = None,
    telemetry: "TelemetryBus | None" = None,
) -> ProcedureApp:
    """Build database + engine + front-tier cache + app from one seed,
    with the same construction conventions as ``run_workload`` (identical
    initial universe for a given ``(params, model, seed)``)."""
    db = build_database(params, seed=seed)
    pop = build_procedures(db, params, model=model, seed=seed)
    if shards is None:
        strategy = make_strategy(
            strategy_name, db, params,
            invalidation_scheme=invalidation_scheme,
        )
    else:
        from repro.shard import make_sharded_strategy

        strategy = make_sharded_strategy(
            strategy_name, db, params, num_shards=shards,
            invalidation_scheme=invalidation_scheme, seed=seed,
        )
    manager = ProcedureManager(strategy)
    for name, expr in pop.definitions:
        manager.define_procedure(name, expr)
    if warm_caches:
        for name in pop.names:
            manager.access(name)
        manager.reset_counters()
        db.clock.reset()
    cache = ResultCache(
        db.clock,
        catalog=db.catalog,
        capacity=capacity,
        ttl_ms=ttl_ms,
        registry=registry,
        telemetry=telemetry,
        audit=audit,
    )
    return ProcedureApp(
        manager, db, cache, max_inflight=max_inflight, seed=seed
    )


# -- open-loop wall-clock driver ------------------------------------------


def plan_requests(
    names: list[str],
    num_requests: int,
    seed: int = 0,
    update_probability: float = 0.1,
    zipf_s: float = 1.1,
    tuples_per_update: int = 10,
) -> list[tuple[str, str, Optional[dict]]]:
    """A seeded request plan: Zipf-skewed reads (rank order shuffled by
    the seed, weight ``1/rank^s``) mixed with update transactions."""
    rng = random.Random(seed + 29)
    ranked = list(names)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(ranked))]
    plan: list[tuple[str, str, Optional[dict]]] = []
    for _ in range(num_requests):
        if rng.random() < update_probability:
            plan.append(
                (
                    "POST",
                    "/updates",
                    {"relation": "R1", "tuples": tuples_per_update},
                )
            )
        else:
            name = rng.choices(ranked, weights=weights)[0]
            plan.append(("GET", f"/procedures/{name}", None))
    return plan


@dataclass
class ServeLoadResult:
    """One open-loop run against the serving app."""

    strategy: str
    seed: int
    requests: int
    status_counts: dict[int, int]
    cache: dict[str, float]
    admission: Optional[dict]
    rejected_429: int
    failed_503: int
    clock_total_ms: float
    wall_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p99_ms: float

    @property
    def hit_rate(self) -> float:
        return float(self.cache.get("hit_rate", 0.0))

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "requests": self.requests,
            "status_counts": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
            "cache": self.cache,
            "admission": self.admission,
            "rejected_429": self.rejected_429,
            "failed_503": self.failed_503,
            "clock_total_ms": self.clock_total_ms,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }


def _percentile(ascending: list[float], q: float) -> float:
    if not ascending:
        return 0.0
    index = min(len(ascending) - 1, round(q * (len(ascending) - 1)))
    return ascending[index]


async def _drive(
    app: ProcedureApp,
    plan: list[tuple[str, str, Optional[dict]]],
    rate_rps: Optional[float],
) -> list[float]:
    latencies: list[float] = []

    async def one(method: str, path: str, body: Optional[dict]) -> None:
        start = time.perf_counter()
        await app.handle(method, path, body)
        latencies.append((time.perf_counter() - start) * 1000.0)

    if rate_rps is None:
        # Burst mode: everything arrives at t=0.
        await asyncio.gather(*(one(*request) for request in plan))
        return latencies
    loop = asyncio.get_running_loop()
    origin = loop.time()
    tasks = []
    for index, request in enumerate(plan):
        delay = origin + index / rate_rps - loop.time()
        if delay > 0:
            # Open loop: the next arrival never waits on completions.
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(one(*request)))
    await asyncio.gather(*tasks)
    return latencies


def run_serve_load(
    params: "ModelParams",
    strategy_name: str,
    model: int = 1,
    num_requests: int = 200,
    seed: int = 0,
    shards: Optional[int] = None,
    capacity: int = 256,
    ttl_ms: Optional[float] = None,
    max_inflight: Optional[int] = None,
    rate_rps: Optional[float] = None,
    zipf_s: float = 1.1,
    update_probability: Optional[float] = None,
    audit: bool = False,
    registry: "MetricsRegistry | None" = None,
    telemetry: "TelemetryBus | None" = None,
) -> ServeLoadResult:
    """Drive an open-loop request plan at a fresh serving stack."""
    app = build_serving_stack(
        params,
        strategy_name,
        model=model,
        seed=seed,
        shards=shards,
        capacity=capacity,
        ttl_ms=ttl_ms,
        max_inflight=max_inflight,
        audit=audit,
        registry=registry,
        telemetry=telemetry,
    )
    if update_probability is None:
        update_probability = params.update_probability
    plan = plan_requests(
        sorted(app.manager.strategy.procedures),
        num_requests,
        seed=seed,
        update_probability=update_probability,
        zipf_s=zipf_s,
        tuples_per_update=int(params.tuples_per_update),
    )
    clock_start = app.manager.clock.elapsed_ms
    wall_start = time.perf_counter()
    latencies = asyncio.run(_drive(app, plan, rate_rps))
    wall_s = time.perf_counter() - wall_start
    latencies.sort()
    return ServeLoadResult(
        strategy=strategy_name,
        seed=seed,
        requests=len(plan),
        status_counts=dict(sorted(app.status_counts.items())),
        cache=app.cache.stats(),
        admission=app.gate.stats() if app.gate is not None else None,
        rejected_429=app.rejected_429,
        failed_503=app.failed_503,
        clock_total_ms=app.manager.clock.elapsed_ms - clock_start,
        wall_s=wall_s,
        throughput_rps=len(plan) / wall_s if wall_s > 0 else 0.0,
        latency_p50_ms=_percentile(latencies, 0.50),
        latency_p99_ms=_percentile(latencies, 0.99),
    )


# -- differential replay ---------------------------------------------------


@dataclass
class ServedRunResult:
    """One synchronous replay of the runner's stream through the tier."""

    strategy: str
    seed: int
    shards: Optional[int]
    cached: bool
    access_log: list[tuple[str, tuple]] = field(default_factory=list)
    cache: Optional[ResultCache] = None
    manager: Optional[ProcedureManager] = None
    clock_total_ms: float = 0.0


def run_served_workload(
    params: "ModelParams",
    strategy_name: str,
    model: int = 1,
    num_operations: int = 120,
    seed: int = 0,
    shards: Optional[int] = None,
    cached: bool = True,
    capacity: int = 256,
    ttl_ms: Optional[float] = None,
    audit: bool = False,
    invalidation_scheme: Optional[str] = None,
) -> ServedRunResult:
    """Replay ``run_workload``'s exact operation stream through the
    front tier. With ``cached=False`` every access recomputes through
    the engine; with ``cached=True`` reads go through the result cache.
    Same seed → same stream → the two access logs must be identical.
    """
    db = build_database(params, seed=seed)
    pop = build_procedures(db, params, model=model, seed=seed)
    if shards is None:
        strategy = make_strategy(
            strategy_name, db, params,
            invalidation_scheme=invalidation_scheme,
        )
    else:
        from repro.shard import make_sharded_strategy

        strategy = make_sharded_strategy(
            strategy_name, db, params, num_shards=shards,
            invalidation_scheme=invalidation_scheme, seed=seed,
        )
    manager = ProcedureManager(strategy)
    for name, expr in pop.definitions:
        manager.define_procedure(name, expr)
    for name in pop.names:
        manager.access(name)
    manager.reset_counters()
    db.clock.reset()

    cache: Optional[ResultCache] = None
    if cached:
        cache = ResultCache(
            db.clock,
            catalog=db.catalog,
            capacity=capacity,
            ttl_ms=ttl_ms,
            audit=audit,
        )
        for procedure in strategy.procedures.values():
            cache.register(procedure)
        manager.update_listener = cache.on_update

    rng = random.Random(seed + 3)  # the runner's update rng stream
    access_log: list[tuple[str, tuple]] = []
    measure_start = db.clock.snapshot()
    operations = generate_operations(params, pop.names, num_operations, seed=seed)
    for op in operations:
        if op.kind is OperationKind.UPDATE:
            _perform_update(
                db, manager, rng, op.tuples_to_modify, relation=op.relation
            )
            continue
        name = op.procedure
        if cache is not None:
            rows, _ = cache.get_or_compute(
                name, lambda: canonical_rows(manager.access(name).rows)
            )
        else:
            rows = canonical_rows(manager.access(name).rows)
        access_log.append((name, tuple(rows)))
    return ServedRunResult(
        strategy=strategy_name,
        seed=seed,
        shards=shards,
        cached=cached,
        access_log=access_log,
        cache=cache,
        manager=manager,
        clock_total_ms=db.clock.elapsed_since(measure_start),
    )
