"""The front-tier result cache: the paper's trade, one tier up.

A procedure's result is worth keeping if invalidating it on update is
cheaper than recomputing it on access — the engine strategies play that
trade against the simulated disk. The serving tier plays it again in
front of the whole engine: a normalized-key result cache holding the
*projected rows* of recent procedure accesses, invalidated by the same
update stream that feeds the i-lock tables.

Three mechanisms bound staleness:

- **Interval/table invalidation** (the correctness mechanism). Every
  cacheable key registers a *footprint* derived from its procedure's
  query: per member relation, the restriction's key interval when one
  exists, else the whole relation. An update transaction probes the
  changed old/new values against a per-``(relation, field)`` sorted
  interval index — Łopuszański's single-table web-cache scheme
  (arXiv 2310.15360) rather than the engine's per-lock sweep: intervals
  are sorted by lower bound with running max-upper-bound prefixes, so
  each changed value stabs the index in ``O(log n + k)`` instead of
  probing every lock. A footprint hit drops the entry before any reader
  can see it; table-level footprints fall back to whole-relation drops.
- **TTL on the simulated clock** (the belt-and-braces bound): entries
  expire ``ttl_ms`` simulated milliseconds after insertion even if no
  invalidation arrives.
- **Capacity LRU eviction** (the space bound), as in the lakehouse
  query-cache exemplar.

The cache itself is front-tier bookkeeping: it never charges the
simulated clock. Misses recompute through the engine (which charges as
usual); hits cost nothing — exactly the asymmetry the hit-rate metric
prices.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.query.predicate import KeyInterval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.procedure import DatabaseProcedure
    from repro.obs.registry import MetricsRegistry
    from repro.obs.telemetry import TelemetryBus
    from repro.sim.clock import CostClock
    from repro.storage.catalog import Catalog

#: ``get_or_compute`` outcome labels, in the exemplar API's vocabulary.
MODE_HIT = "cache_hit"
MODE_MISS = "cache_miss"
MODE_EXPIRED = "cache_expired"
MODE_UNCACHED = "uncached"


def canonical_rows(rows: Iterable[tuple]) -> tuple:
    """The serving tier's canonical response order: sorted rows.

    Physical scan order is an engine-level detail — clustered
    relocations and page splits legitimately reorder equal-key tuples
    without changing any value, and multi-shard engines interleave rows
    differently than shards=1. The front tier therefore guarantees
    *result* identity in a canonical order (the same convention the
    shard facade's differential harness uses), which also makes
    cache-on and cache-off responses bit-identical.
    """
    return tuple(sorted(rows))


def canonical_key(raw: str) -> str:
    """Normalize a request key: collapse internal whitespace, strip the
    surrounding whitespace and any trailing statement terminator, so
    ``" P1_007 ;"`` and ``"P1_007"`` share one cache line (the
    normalized-SQL matching of the lakehouse exemplar, scaled down to
    procedure names)."""
    key = " ".join(raw.split())
    while key.endswith(";"):
        key = key[:-1].rstrip()
    return key


@dataclass(frozen=True)
class Footprint:
    """One relation a cached result depends on, with the key interval
    that bounds the dependency (``None`` = the whole relation)."""

    relation: str
    interval: Optional[KeyInterval] = None


def footprint_of(procedure: "DatabaseProcedure") -> tuple[Footprint, ...]:
    """Derive a cached result's invalidation footprint from its query.

    For each member relation, take the restriction's key interval on one
    restricted field when extractable (a conservative superset of the
    satisfying rows — rows outside it can never join into or select into
    the result), else fall back to the whole relation. Join-key churn is
    covered because join inputs without an interval restriction register
    table-level footprints.
    """
    query = procedure.query
    if query is None:
        raise ValueError(
            f"procedure {procedure.name!r} is unbound; bind() before caching"
        )
    prints: list[Footprint] = []
    for relation in query.relations:
        predicate = query.restriction_of(relation)
        interval: Optional[KeyInterval] = None
        for field in sorted(predicate.fields()):
            interval = predicate.interval_on(field)
            if interval is not None:
                break
        prints.append(Footprint(relation, interval))
    return tuple(prints)


class IntervalStabber:
    """A sorted interval index answering point stabs.

    Intervals are kept sorted by lower bound alongside a running
    max-upper-bound prefix; a stab bisects to the last interval whose
    lower bound admits the value, then walks left only while the prefix
    maximum says a hit is still possible. Mutations mark the index dirty
    and it rebuilds lazily on the next probe. Non-orderable bound types
    degrade to a linear (still exact) scan.
    """

    _NEG = (0,)  # sort key for an unbounded lower end

    def __init__(self) -> None:
        self._intervals: dict[str, KeyInterval] = {}
        self._dirty = True
        self._linear = False
        self._lo_keys: list[tuple] = []
        self._order: list[str] = []
        self._max_hi: list[Any] = []  # prefix max upper bound; None = +inf

    def __len__(self) -> int:
        return len(self._intervals)

    def add(self, key: str, interval: KeyInterval) -> None:
        self._intervals[key] = interval
        self._dirty = True

    def discard(self, key: str) -> None:
        if self._intervals.pop(key, None) is not None:
            self._dirty = True

    def _rebuild(self) -> None:
        self._dirty = False
        self._linear = False
        try:
            ranked = sorted(
                self._intervals.items(),
                key=lambda kv: self._NEG
                if kv[1].lo is None
                else (1, kv[1].lo),
            )
        except TypeError:  # mixed bound types: stay exact, go linear
            self._linear = True
            return
        self._lo_keys = [
            self._NEG if iv.lo is None else (1, iv.lo) for _, iv in ranked
        ]
        self._order = [key for key, _ in ranked]
        self._max_hi = []
        running: Any = ...  # sentinel: nothing seen yet
        for _, interval in ranked:
            if running is None or interval.hi is None:
                running = None  # unbounded above dominates everything
            elif running is ... or interval.hi > running:
                running = interval.hi
            self._max_hi.append(running)

    def stab(self, value: Any) -> set[str]:
        """Keys of every interval containing ``value``."""
        if self._dirty:
            self._rebuild()
        if self._linear:
            return {
                key
                for key, interval in self._intervals.items()
                if interval.contains(value)
            }
        hits: set[str] = set()
        try:
            idx = bisect.bisect_right(self._lo_keys, (1, value))
        except TypeError:
            self._linear = True
            return self.stab(value)
        for i in range(idx - 1, -1, -1):
            ceiling = self._max_hi[i]
            try:
                if ceiling is not None and ceiling < value:
                    break  # no interval at or left of i reaches this high
            except TypeError:
                self._linear = True
                return self.stab(value)
            interval = self._intervals[self._order[i]]
            if interval.contains(value):
                hits.add(self._order[i])
        return hits


@dataclass
class _Entry:
    rows: tuple
    expires_ms: Optional[float]
    footprints: tuple[Footprint, ...]


class ResultCache:
    """get_or_compute over canonicalized keys with sound invalidation.

    Only *registered* keys (see :meth:`register`) are cached — an
    unregistered key has no footprint, so its result passes through
    uncached rather than risk staleness. ``audit=True`` recomputes on
    every hit and counts disagreements as ``stale_reads`` — the bench
    gate's zero-stale proof runs with it on.
    """

    def __init__(
        self,
        clock: "CostClock",
        catalog: "Catalog | None" = None,
        capacity: int = 256,
        ttl_ms: Optional[float] = None,
        registry: "MetricsRegistry | None" = None,
        telemetry: "TelemetryBus | None" = None,
        audit: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_ms is not None and ttl_ms <= 0:
            raise ValueError("ttl_ms must be positive (or None for no TTL)")
        self.clock = clock
        self.catalog = catalog
        self.capacity = capacity
        self.ttl_ms = ttl_ms
        self.registry = registry
        self.telemetry = telemetry
        self.audit = audit
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._footprints: dict[str, tuple[Footprint, ...]] = {}
        self._stabbers: dict[str, dict[str, IntervalStabber]] = {}
        self._table_keys: dict[str, set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_reads = 0

    # -- registration ------------------------------------------------------

    def register(self, procedure: "DatabaseProcedure") -> str:
        """Make ``procedure`` cacheable; returns its canonical key."""
        return self.register_key(
            procedure.name, footprint_of(procedure)
        )

    def register_key(
        self, raw_key: str, footprints: tuple[Footprint, ...]
    ) -> str:
        """Make ``raw_key`` cacheable under an explicit footprint set —
        the general form of :meth:`register` for results whose
        dependencies are known without a bound procedure (and the hook
        the property-based oracle harness drives)."""
        key = canonical_key(raw_key)
        self._footprints[key] = tuple(footprints)
        return key

    def is_registered(self, raw_key: str) -> bool:
        return canonical_key(raw_key) in self._footprints

    # -- the exemplar API --------------------------------------------------

    def get_or_compute(
        self, raw_key: str, compute: Callable[[], Iterable[tuple]]
    ) -> tuple[tuple, str]:
        """Serve ``raw_key`` from cache or compute-and-fill.

        Returns ``(rows, mode)`` with mode one of ``cache_hit``,
        ``cache_miss``, ``cache_expired`` (present but past TTL, treated
        as a miss), or ``uncached`` (unregistered key, passthrough).
        """
        key = canonical_key(raw_key)
        footprints = self._footprints.get(key)
        if footprints is None:
            return tuple(compute()), MODE_UNCACHED
        now = self.clock.elapsed_ms
        entry = self._entries.get(key)
        mode = MODE_MISS
        if entry is not None:
            if entry.expires_ms is not None and now >= entry.expires_ms:
                self._drop(key)
                self.expirations += 1
                self._emit("serve.cache.expiration")
                mode = MODE_EXPIRED
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                self._emit("serve.cache.hit")
                if self.audit:
                    fresh = tuple(compute())
                    if fresh != entry.rows:
                        self.stale_reads += 1
                        self._emit("serve.cache.stale_read")
                        self._drop(key)
                        self._store(key, fresh, footprints)
                        return fresh, MODE_HIT
                return entry.rows, MODE_HIT
        if mode is MODE_MISS:
            self.misses += 1
            self._emit("serve.cache.miss")
        rows = tuple(compute())
        self._store(key, rows, footprints)
        return rows, mode

    # -- invalidation ------------------------------------------------------

    def on_update(
        self,
        relation: str,
        inserts: list[tuple],
        deletes: list[tuple],
    ) -> int:
        """Feed one update transaction's delta through the invalidation
        index — the same ``deletes + inserts`` row stream the engine hands
        its i-lock sweep. Returns the number of entries dropped."""
        if not inserts and not deletes:
            return 0
        doomed = set(self._table_keys.get(relation, ()))
        by_field = self._stabbers.get(relation)
        if by_field:
            if self.catalog is None:
                raise ValueError(
                    "on_update with interval footprints needs a catalog"
                )
            names = self.catalog.get(relation).schema.names()
            for field, stabber in by_field.items():
                if not len(stabber):
                    continue
                pos = names.index(field)
                seen: set = set()
                for row in deletes + inserts:
                    value = row[pos]
                    if value in seen or value is None:
                        continue
                    seen.add(value)
                    doomed |= stabber.stab(value)
        return self._invalidate(doomed)

    def invalidate_table(self, relation: str) -> int:
        """Drop every entry whose footprint touches ``relation`` at all
        (interval or table level) — the coarse invalidate-by-table verb
        of the exemplar API. Returns the number dropped."""
        doomed = {
            key
            for key, entry in self._entries.items()
            if any(fp.relation == relation for fp in entry.footprints)
        }
        return self._invalidate(doomed)

    def clear(self) -> int:
        """Drop everything (counts as invalidations)."""
        return self._invalidate(set(self._entries))

    # -- stats -------------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.expirations

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale_reads": self.stale_reads,
            "hit_rate": self.hit_rate,
        }

    # -- internals ---------------------------------------------------------

    def _emit(self, point: str) -> None:
        if self.registry is not None:
            self.registry.counter(point).inc()
        if self.telemetry is not None:
            self.telemetry.on_point(point, 1.0, self.clock.elapsed_ms)

    def _store(
        self, key: str, rows: tuple, footprints: tuple[Footprint, ...]
    ) -> None:
        if key in self._entries:
            self._drop(key)
        expires = (
            None
            if self.ttl_ms is None
            else self.clock.elapsed_ms + self.ttl_ms
        )
        self._entries[key] = _Entry(rows, expires, footprints)
        for fp in footprints:
            if fp.interval is None:
                self._table_keys.setdefault(fp.relation, set()).add(key)
            else:
                self._stabbers.setdefault(fp.relation, {}).setdefault(
                    fp.interval.field, IntervalStabber()
                ).add(key, fp.interval)
        while len(self._entries) > self.capacity:
            victim = next(iter(self._entries))
            self._drop(victim)
            self.evictions += 1
            self._emit("serve.cache.eviction")

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for fp in entry.footprints:
            if fp.interval is None:
                keys = self._table_keys.get(fp.relation)
                if keys is not None:
                    keys.discard(key)
            else:
                by_field = self._stabbers.get(fp.relation)
                if by_field is not None:
                    stabber = by_field.get(fp.interval.field)
                    if stabber is not None:
                        stabber.discard(key)

    def _invalidate(self, doomed: set[str]) -> int:
        dropped = 0
        for key in sorted(doomed):
            if key in self._entries:
                self._drop(key)
                dropped += 1
                self.invalidations += 1
                self._emit("serve.cache.invalidation")
        return dropped
