"""Ablation: invalidation-recording schemes for Cache and Invalidate.

The paper's Figures 4 vs 5 show CI's cost is "highly sensitive to the
value of C_inval" and sketch three implementations (§3): the naive
flag-on-the-object's-page write (2*C2 per invalidation), a write-ahead-
logged in-memory map, and battery-backed memory. This bench runs all three
*actual implementations* (see ``repro.recovery``) in the simulator and
checks the ordering the paper predicts:

    battery  ~  WAL  <<  page_flag
"""

import pathlib

from repro.experiments.simcompare import SIM_SCALE_PARAMS
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def test_invalidation_scheme_ablation(benchmark):
    params = SIM_SCALE_PARAMS.with_update_probability(0.5)

    def measure():
        out = {}
        for scheme in ("battery", "wal", "page_flag"):
            result = run_workload(
                params,
                "cache_invalidate",
                num_operations=240,
                seed=17,
                invalidation_scheme=scheme,
            )
            out[scheme] = result.cost_per_access_ms
        return out

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{scheme:10s} {cost:9.1f} ms/access" for scheme, cost in costs.items()]
    text = "CI cost per access by invalidation scheme (P=0.5):\n" + "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_invalidation.txt").write_text(text + "\n")
    print()
    print(text)

    # Battery-backed is the floor. The (safe, per-invalidation-forced) WAL
    # pays one sequential log write per invalidation — about half the
    # page-flag scheme's read+write — so it must land strictly between.
    assert costs["battery"] <= costs["wal"] < costs["page_flag"]
    wal_overhead = costs["wal"] - costs["battery"]
    flag_overhead = costs["page_flag"] - costs["battery"]
    assert wal_overhead <= 0.6 * flag_overhead


def test_wal_scheme_survives_crash_mid_workload(benchmark):
    """Recovery correctness under load: crash the WAL-backed validity map
    mid-run, recover, and verify no stale cache is ever served."""
    from repro.core import ProcedureManager
    from repro.workload import build_database, build_procedures
    from repro.workload.runner import make_strategy
    import random

    def run():
        params = SIM_SCALE_PARAMS.with_update_probability(0.5)
        db = build_database(params, seed=23)
        pop = build_procedures(db, params, model=1, seed=23)
        strategy = make_strategy(
            "cache_invalidate", db, params, invalidation_scheme="wal"
        )
        manager = ProcedureManager(strategy)
        for name, expr in pop.definitions:
            manager.define_procedure(name, expr)
        recompute = make_strategy("always_recompute", db, params)
        recompute_mgr = ProcedureManager(recompute)
        for name, expr in pop.definitions:
            recompute_mgr.define_procedure(name, expr)

        rng = random.Random(23)
        mismatches = 0
        for step in range(120):
            if step % 40 == 39:
                strategy.scheme.crash_and_recover()
            if rng.random() < 0.5:
                positions = rng.sample(range(len(db.r1_rids)), 5)
                changes = []
                for pos in positions:
                    rid = db.r1_rids[pos]
                    old = db.r1.heap.read(rid)
                    changes.append(
                        (rid, (old[0], rng.randrange(db.sel_domain), old[2]))
                    )
                manager.update("R1", changes, cluster_field="sel")
                for pos, new_rid in zip(positions, manager.last_rids):
                    db.r1_rids[pos] = new_rid
            else:
                name = pop.names[rng.randrange(len(pop.names))]
                got = sorted(manager.access(name).rows)
                want = sorted(recompute_mgr.access(name).rows)
                if got != want:
                    mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0, "stale cache served after crash recovery"
