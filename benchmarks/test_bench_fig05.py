"""Figure 5: query cost vs update probability, free invalidation
(C_inval = 0) — the paper's headline model-1 comparison.

Paper shape: CI = UC at P = 0; UC clearly cheaper than CI through the
moderate-P band (incremental maintenance beats invalidate-and-recompute,
and CI suffers false invalidations); CI plateaus slightly above Always
Recompute for P > ~0.6; UC's cost explodes as P -> 1.
"""

from conftest import series_at


def test_fig05_default_costs(regenerate):
    result = regenerate("fig05")

    # Equality at P = 0 (both just read a 2-page cached value: 60 ms).
    assert series_at(result, "cache_invalidate", 0.0) == 60.0
    assert series_at(result, "update_cache_avm", 0.0) == 60.0

    # Update Cache (AVM) wins the moderate band by a wide margin.
    assert series_at(result, "update_cache_avm", 0.5) < 0.5 * series_at(
        result, "cache_invalidate", 0.5
    )

    # CI plateau: within 2% of Always Recompute at P = 0.9.
    ar = series_at(result, "always_recompute", 0.9)
    ci = series_at(result, "cache_invalidate", 0.9)
    assert 1.0 < ci / ar < 1.10

    # UC overtakes everything as P grows.
    assert series_at(result, "update_cache_avm", 0.9) > ci
