"""Columnar hot path vs the dict reference path, on the wall clock.

The simulated clock is bit-identical under both modes (that is the
differential harness's contract); what the columnar pipeline buys is
*real* time. This bench times the fig05 scenario at ``l = 100`` — the
wide-update regime where vectorized i-lock probes, compiled predicate
screens, and batched Rete routing pay off — under both modes and writes
the wall-ms-per-update table to ``results/``. The hard ≥3x gate lives
in the CI wall-clock lane (``repro-procs bench --wall-clock``); here we
only assert the soft invariant that columnar mode is not slower beyond
runner noise.
"""

import pathlib

from repro.experiments.simcompare import SIM_SCALE_PARAMS
from repro.obs.ledger import WALL_NOT_SLOWER_FACTOR
from repro.storage.columnar import columnar_mode
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

STRATEGIES = ("cache_invalidate", "update_cache_avm", "update_cache_rvm")
MODES = (("columnar", True), ("dict", False))


def test_columnar_vs_dict_wall_clock(benchmark):
    params = SIM_SCALE_PARAMS.replace(
        tuples_per_update=100
    ).with_update_probability(0.5)

    def measure():
        table = {}
        for strategy in STRATEGIES:
            for mode_name, enabled in MODES:
                with columnar_mode(enabled):
                    run = run_workload(
                        params, strategy, num_operations=60, seed=7
                    )
                table[(strategy, mode_name)] = run.wall_ms_per_update
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'strategy':>18s} "
        + " ".join(f"{mode:>12s}" for mode, _ in MODES)
        + f" {'speedup':>8s}"
    ]
    for strategy in STRATEGIES:
        columnar_ms = table[(strategy, "columnar")]
        dict_ms = table[(strategy, "dict")]
        speedup = dict_ms / max(columnar_ms, 1e-9)
        lines.append(
            f"{strategy:>18s} {columnar_ms:12.3f} {dict_ms:12.3f} "
            f"{speedup:7.2f}x"
        )
    text = (
        "wall ms/update at l=100, columnar vs dict (P=0.5):\n"
        + "\n".join(lines)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_columnar.txt").write_text(text + "\n")
    print()
    print(text)

    # Soft gate only: one un-medianed sample per cell is too noisy for
    # the 3x claim (the CI wall-clock lane enforces that); "not slower
    # beyond the shared tolerance factor" is robust even here.
    for strategy in STRATEGIES:
        assert (
            table[(strategy, "columnar")]
            <= WALL_NOT_SLOWER_FACTOR * table[(strategy, "dict")]
        )
