"""Shard-scale sizing sweep: memory per procedure vs population.

The ROADMAP's scale item asks whether procedure populations of 10^5-10^6
are feasible; the answer is a *space* curve. This bench runs the RVM
engine behind the sharded facade over P1-only populations at the
``repro.shard.scale_params`` point, measures ``bytes_per_procedure`` at
1 and 8 shards, writes the table to ``results/bench_shard.txt``, and
asserts the same sublinearity the ledger's ``shard.scale`` scenario
gates: partitioning must not inflate bytes (shards=8 == shards=1 for
P1-only populations) and bytes per procedure must fall as the
population grows (hash-consed sharing saturates the key domain).
"""

import pathlib

from repro.shard import measure_sizing, scale_params
from repro.workload.database import build_database
from repro.workload.runner import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

POPULATIONS = (5_000, 20_000, 100_000)
SHARD_COUNTS = (1, 8)
OPERATIONS = 30
SEED = 7


def test_shard_scale_sizing(benchmark):
    def measure():
        table = {}
        for population in POPULATIONS:
            params = scale_params(population)
            for num_shards in SHARD_COUNTS:
                db = build_database(params, seed=SEED)
                run = run_workload(
                    params,
                    "update_cache_rvm",
                    num_operations=OPERATIONS,
                    seed=SEED,
                    warm_caches=False,
                    database=db,
                    keep_manager=True,
                    shards=num_shards,
                )
                sizing = measure_sizing(
                    db, run.manager.strategy, seed=SEED
                )
                table[(population, num_shards)] = (
                    sizing.bytes_per_procedure,
                    run.maintenance_cost_ms / max(1, run.num_updates),
                )
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'population':>10s} "
        + " ".join(f"{f'bpp s{s}':>10s}" for s in SHARD_COUNTS)
        + f" {'maint ms/upd':>12s}"
    ]
    for population in POPULATIONS:
        bpps = [table[(population, s)][0] for s in SHARD_COUNTS]
        maint = table[(population, SHARD_COUNTS[-1])][1]
        lines.append(
            f"{population:10d} "
            + " ".join(f"{bpp:10.2f}" for bpp in bpps)
            + f" {maint:12.1f}"
        )
    text = (
        "bytes per procedure (caches + Rete memories + i-locks), "
        "P1-only scale point:\n" + "\n".join(lines)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_shard.txt").write_text(text + "\n")
    print()
    print(text)

    for population in POPULATIONS:
        # Partitioning never inflates bytes for P1-only populations.
        assert (
            table[(population, 8)][0] <= table[(population, 1)][0]
        )
    # Strictly sublinear in population: per-procedure bytes fall as the
    # population grows past the key domain's interval diversity.
    bpp_by_pop = [table[(p, 8)][0] for p in POPULATIONS]
    assert bpp_by_pop == sorted(bpp_by_pop, reverse=True)
    assert bpp_by_pop[-1] < bpp_by_pop[0]
