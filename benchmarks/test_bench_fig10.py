"""Figure 10: query cost vs update probability with a large number of
objects (N1 = N2 = 1000).

Paper shape: the strategies still meet at P = 0, but Update Cache's slope
steepens ~10x (every update maintains ten times as many materialised
values) and Cache and Invalidate reaches its plateau at a smaller P.
"""

from conftest import series_at

from repro.experiments import run_experiment


def test_fig10_many_objects(regenerate):
    result = regenerate("fig10")
    default = run_experiment("fig05")

    # Equal at P = 0 regardless of object count (read one cached value).
    assert series_at(result, "cache_invalidate", 0.0) == series_at(
        result, "update_cache_avm", 0.0
    )

    # UC slope scales with the number of maintained objects.
    def slope(res, strategy):
        return series_at(res, strategy, 0.5) - series_at(res, strategy, 0.0)

    assert slope(result, "update_cache_avm") > 5 * slope(
        default, "update_cache_avm"
    )

    # CI reaches its plateau (within 10% of AR) by a smaller P than in the
    # default figure.
    def plateau_p(res):
        for p in res.x_values:
            ar = series_at(res, "always_recompute", p)
            if series_at(res, "cache_invalidate", p) >= 0.9 * ar:
                return p
        return 1.0

    assert plateau_p(result) <= plateau_p(default)
