"""Figure 9: query cost vs update probability under high locality
(Z = 0.05: 5% of procedures receive 95% of accesses).

Paper shape: locality benefits Cache and Invalidate — hot procedures are
re-read before many invalidating updates accumulate — but does nothing for
Update Cache, which pays maintenance regardless of who reads.
"""

from conftest import series_at

from repro.experiments import run_experiment


def test_fig09_high_locality(regenerate):
    result = regenerate("fig09")
    default = run_experiment("fig05")

    # CI is cheaper under high locality than at the default Z.
    for p in (0.1, 0.3, 0.5):
        assert series_at(result, "cache_invalidate", p) < series_at(
            default, "cache_invalidate", p
        )

    # Update Cache's cost is locality-independent.
    for p in (0.1, 0.5, 0.9):
        assert series_at(result, "update_cache_avm", p) == series_at(
            default, "update_cache_avm", p
        )

    # With high locality CI is competitive with UC at low P and superior
    # at high P.
    assert series_at(result, "cache_invalidate", 0.9) < series_at(
        result, "update_cache_avm", 0.9
    )
