"""Figure 6: query cost vs update probability for large objects (f = 0.01;
P1 values hold 1000 tuples, P2 values 100).

Paper shape: at low update probability, incrementally updating a large
object is far cheaper than invalidating and recomputing it, so Update Cache
dominates Cache and Invalidate — the paper's case *for* view maintenance.
"""

from conftest import series_at


def test_fig06_large_objects(regenerate):
    result = regenerate("fig06")

    # Large objects: recompute is expensive, so any caching pays at low P.
    ar = series_at(result, "always_recompute", 0.1)
    assert series_at(result, "update_cache_avm", 0.1) < ar / 4

    # UC's advantage over CI is pronounced at low P...
    assert series_at(result, "update_cache_avm", 0.1) < 0.6 * series_at(
        result, "cache_invalidate", 0.1
    )

    # ...but large objects are touched by almost every update, so UC's
    # winning P-range is narrower than for the default f (its curve crosses
    # CI's earlier than in figure 5).
    from repro.experiments import run_experiment

    default = run_experiment("fig05")

    def crossover(res):
        for p in res.x_values:
            if series_at(res, "update_cache_avm", p) > series_at(
                res, "cache_invalidate", p
            ):
                return p
        return 1.0

    assert crossover(result) <= crossover(default)
