"""Ablation: the paper's no-buffering assumption.

The 1987 model charges every page touch as a disk I/O — DESIGN.md flags
this as the assumption most dated by modern memory sizes. This bench
sweeps the simulator's LRU buffer capacity and shows what modern memory
does to the trade-off: the *absolute* costs collapse for every strategy,
but Update Cache's *relative* advantage at low update probability survives
— once I/O is free, Always Recompute still burns O(fN) CPU per access
while maintenance scales with the (tiny) delta. The paper's conclusion is
robust to its most dated assumption.
"""

import pathlib

from repro.experiments.simcompare import SIM_SCALE_PARAMS
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

CAPACITIES = (0, 64, 1024, 8192)
STRATEGIES = ("always_recompute", "cache_invalidate", "update_cache_avm")


def test_buffer_capacity_ablation(benchmark):
    params = SIM_SCALE_PARAMS.with_update_probability(0.3)

    def measure():
        table = {}
        for capacity in CAPACITIES:
            for strategy in STRATEGIES:
                run = run_workload(
                    params,
                    strategy,
                    num_operations=200,
                    seed=29,
                    buffer_capacity=capacity,
                )
                table[(capacity, strategy)] = run.cost_per_access_ms
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'frames':>8s} " + " ".join(f"{s:>18s}" for s in STRATEGIES)]
    for capacity in CAPACITIES:
        lines.append(
            f"{capacity:8d} "
            + " ".join(f"{table[(capacity, s)]:18.1f}" for s in STRATEGIES)
        )
    text = "cost/access (ms) vs buffer capacity, P=0.3:\n" + "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_buffer.txt").write_text(text + "\n")
    print()
    print(text)

    # A large pool is a clear win for every strategy. (A *small* pool can
    # look worse on the per-access metric: deferred write-backs from base
    # updates evict during later accesses and land in the access bucket —
    # honest shared-buffer-pool cost smearing, visible in the 64-frame
    # row.)
    for strategy in STRATEGIES:
        assert table[(CAPACITIES[-1], strategy)] < table[(0, strategy)]
    # Buffering shrinks the *absolute* Always-Recompute-vs-Update-Cache
    # gap (I/O vanishes for everyone) but the *relative* advantage of
    # Update Cache persists — recompute still pays O(fN) CPU per access
    # while maintenance work scales with the delta. The paper's low-P
    # conclusion is therefore robust to the no-buffering assumption.
    gap_cold = table[(0, "always_recompute")] - table[(0, "update_cache_avm")]
    gap_warm = table[(CAPACITIES[-1], "always_recompute")] - table[
        (CAPACITIES[-1], "update_cache_avm")
    ]
    assert gap_warm < gap_cold
    assert (
        table[(CAPACITIES[-1], "update_cache_avm")]
        < table[(CAPACITIES[-1], "always_recompute")]
    )
