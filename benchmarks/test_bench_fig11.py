"""Figure 11: Update Cache variants (AVM vs RVM) vs sharing factor, model 1
(two-way joins).

Paper shape: AVM is flat in SF; RVM's cost falls linearly with SF but the
α-memory refresh overhead means RVM becomes comparable to AVM only as
SF -> 1 — with two-way joins, sharing cannot buy back the memory-
maintenance overhead.
"""

from conftest import series_at


def test_fig11_sharing_model1(regenerate):
    result = regenerate("fig11")
    avm = result.series["update_cache_avm"]
    rvm = result.series["update_cache_rvm"]

    # AVM flat, RVM strictly decreasing.
    assert max(avm) == min(avm)
    assert all(b < a for a, b in zip(rvm, rvm[1:]))

    # RVM above AVM everywhere except (at most) full sharing.
    assert all(
        r > a
        for r, a, sf in zip(rvm, avm, result.x_values)
        if sf < 0.95
    )
    assert series_at(result, "update_cache_rvm", 1.0) <= series_at(
        result, "update_cache_avm", 1.0
    )
