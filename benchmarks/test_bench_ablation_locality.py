"""Ablation: locality skew Z, fine-grained.

Figures 9/13 show two Z points (0.2 default, 0.05 "high locality"). This
bench sweeps Z continuously and verifies the mechanism the paper
describes: locality lowers Cache and Invalidate's cost monotonically (hot
procedures are re-read before invalidating updates accumulate) while
Update Cache is exactly locality-blind.
"""

import pathlib

from repro.model import ModelParams, cost_of

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

Z_VALUES = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)


def test_locality_sweep(benchmark):
    params = ModelParams().with_update_probability(0.3)

    def sweep():
        table = {}
        for z in Z_VALUES:
            point = params.replace(locality=z)
            table[z] = {
                "cache_invalidate": cost_of("cache_invalidate", point).total_ms,
                "update_cache_avm": cost_of("update_cache_avm", point).total_ms,
                "ip": cost_of("cache_invalidate", point).component("info.IP"),
            }
        return table

    table = benchmark(sweep)
    lines = [f"{'Z':>6s} {'CI ms':>10s} {'UC ms':>10s} {'P(invalid)':>11s}"]
    for z in Z_VALUES:
        row = table[z]
        lines.append(
            f"{z:6.2f} {row['cache_invalidate']:10.1f} "
            f"{row['update_cache_avm']:10.1f} {row['ip']:11.3f}"
        )
    text = "cost/access vs locality skew Z (P=0.3):\n" + "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_locality.txt").write_text(text + "\n")
    print()
    print(text)

    ci = [table[z]["cache_invalidate"] for z in Z_VALUES]
    uc = [table[z]["update_cache_avm"] for z in Z_VALUES]
    ip = [table[z]["ip"] for z in Z_VALUES]
    # CI cost and invalidation probability rise monotonically with Z
    # (Z = 0.5 is the uniform, worst case for CI)...
    assert all(b >= a for a, b in zip(ci, ci[1:]))
    assert all(b >= a for a, b in zip(ip, ip[1:]))
    # ...while Update Cache does not depend on Z at all.
    assert max(uc) == min(uc)
