"""Figure 15: CI-closeness region with f2 = 1 — false invalidations
eliminated.

Paper shape: with f2 = 1 every broken i-lock corresponds to a real change
in the procedure value, so Cache and Invalidate stops paying for false
invalidations and its close-to-UC region grows (CI 'performs even better
for small objects in this situation').
"""

from repro.experiments import run_experiment


def test_fig15_no_false_invalidation(regenerate):
    result = regenerate("fig15")
    base = run_experiment("fig14")

    assert result.grid.count("ci_within") >= base.grid.count("ci_within")

    # Cell-wise monotonicity: no cell leaves the close region when false
    # invalidations are removed.
    for row_a, row_b in zip(base.grid.labels, result.grid.labels):
        for cell_a, cell_b in zip(row_a, row_b):
            if cell_a == "ci_within":
                assert cell_b == "ci_within"
