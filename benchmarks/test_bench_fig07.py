"""Figure 7: query cost vs update probability for small objects
(f = 0.0001; P1 values hold 10 tuples, P2 values 1).

Paper shape (§8 headline): at P = 0.1, Cache and Invalidate and Update
Cache beat Always Recompute by factors of roughly 5 and 7; CI stays
competitive with UC throughout and never suffers UC's high-P blow-up.
"""

from conftest import series_at


def test_fig07_small_objects(regenerate):
    result = regenerate("fig07")

    ar = series_at(result, "always_recompute", 0.1)
    ci = series_at(result, "cache_invalidate", 0.1)
    uc = series_at(result, "update_cache_avm", 0.1)

    # The paper's quoted speedups: ~5x (CI) and ~7x (UC).
    assert 3.5 <= ar / ci <= 6.0
    assert 5.0 <= ar / uc <= 8.5

    # CI competitive with UC for small objects across the low-P band.
    for p in (0.1, 0.2, 0.3, 0.4, 0.5):
        assert series_at(result, "cache_invalidate", p) <= 2.0 * series_at(
            result, "update_cache_avm", p
        )

    # And no severe CI degradation at high P: its plateau is bounded by
    # T1 = C_ProcessQuery + 2*C2*ProcSize. For tiny objects the write-back
    # is a larger *fraction* of the (small) recompute cost, so the plateau
    # sits a bit further above AR than at the default f — but nothing like
    # Update Cache's blow-up.
    assert series_at(result, "cache_invalidate", 0.9) <= 1.3 * series_at(
        result, "always_recompute", 0.9
    )
    assert series_at(result, "update_cache_avm", 0.9) > 1.5 * series_at(
        result, "cache_invalidate", 0.9
    )
