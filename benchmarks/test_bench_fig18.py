"""Figure 18: Update Cache variants (AVM vs RVM) vs sharing factor, model 2
(three-way joins).

Paper shape: the curves cross at SF ~ 0.47; above it RVM wins because the
changed R1 tuples join once against the precomputed sigma_Cf2(R2) |><| R3
β-memory where AVM must join through R2 and then R3.
"""


def test_fig18_sharing_model2(regenerate):
    result = regenerate("fig18")
    avm = result.series["update_cache_avm"]
    rvm = result.series["update_cache_rvm"]
    sfs = result.x_values

    crossover = next(sf for sf, a, r in zip(sfs, avm, rvm) if r <= a)
    assert 0.35 <= crossover <= 0.60, (
        f"crossover at SF={crossover}, paper says ~0.47"
    )

    # Below the crossover AVM wins; above it RVM wins.
    for sf, a, r in zip(sfs, avm, rvm):
        if sf < crossover - 1e-9:
            assert a < r
        elif sf > crossover + 0.05:
            assert r < a
