"""Figure 17: query cost vs update probability, model 2 (three-way P2
joins), default parameters.

Paper shape: 'the performance results for Model 1 and Model 2 are similar'
(compare figure 5) — same orderings and plateau — 'the main difference is
that the shared view maintenance algorithm (RVM) performs significantly
better in model 2 compared to the non-shared algorithm (AVM)'.
"""

from conftest import series_at

from repro.experiments import run_experiment


def test_fig17_model2_costs(regenerate):
    result = regenerate("fig17")
    model1 = run_experiment("fig05")

    # Same qualitative shape as figure 5.
    assert series_at(result, "cache_invalidate", 0.0) == series_at(
        result, "update_cache_avm", 0.0
    )
    ar = series_at(result, "always_recompute", 0.9)
    assert series_at(result, "cache_invalidate", 0.9) / ar < 1.1

    # Three-way recompute costs more than two-way.
    assert series_at(result, "always_recompute", 0.5) > series_at(
        model1, "always_recompute", 0.5
    )

    # The RVM-vs-AVM flip: RVM loses in model 1 at SF = 0.5 but wins (or
    # ties) in model 2.
    assert series_at(model1, "update_cache_rvm", 0.5) > series_at(
        model1, "update_cache_avm", 0.5
    )
    assert series_at(result, "update_cache_rvm", 0.5) <= series_at(
        result, "update_cache_avm", 0.5
    )
