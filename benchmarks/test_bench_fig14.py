"""Figure 14: the region where Cache and Invalidate is within a factor of
two of Update Cache (or better), model 1 defaults.

Paper shape: CI is close to UC (a) at high update probability everywhere
(UC degrades, CI plateaus) and (b) for small objects at low update
probability (invalidate-and-recompute of a small object is nearly as cheap
as incrementally updating it).
"""


def test_fig14_ci_closeness(regenerate):
    result = regenerate("fig14")
    grid = result.grid

    # (a) entire high-P rows are within 2x.
    high_rows = [i for i, p in enumerate(grid.p_values) if p >= 0.7]
    for i in high_rows:
        assert all(label == "ci_within" for label in grid.labels[i])

    # (b) the smallest-object column is within 2x at every P.
    assert all(row[0] == "ci_within" for row in grid.labels)

    # And the region is not everything: moderate P with large objects puts
    # CI more than 2x behind UC.
    assert grid.count("ci_outside") > 0
