"""Ablation: relative update frequency across relations.

Paper §8: "The relative frequency of updates to different relations is an
important factor that was not analyzed in this paper. Static optimization
methods will use statistics on relative update frequency when designing an
optimal plan ... the plan produced will be efficient for the given update
pattern."

The RVM networks and AVM plans in this reproduction are statically shaped
for the paper's pattern — *all updates hit R1* (the α-memory side; the
``σ_Cf2(R2) ⋈ R3`` right memory is precomputed and assumed quiescent).
This bench measures what happens when that assumption breaks: as updates
shift toward R2, RVM must maintain every P2's private right memory and
re-probe the *left* α-memory per change, and AVM's delta joins run against
their un-indexed direction. Both Update Cache variants lose their edge,
while Always Recompute is indifferent to who gets updated — quantifying
the paper's warning about fixed execution plans.
"""

import pathlib

from repro.experiments.simcompare import SIM_SCALE_PARAMS
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

MIXES = {
    "r1_only": {"R1": 1.0},
    "mostly_r1": {"R1": 0.8, "R2": 0.2},
    "even": {"R1": 0.5, "R2": 0.5},
    "mostly_r2": {"R1": 0.2, "R2": 0.8},
}
STRATEGIES = ("always_recompute", "update_cache_avm", "update_cache_rvm")


def test_update_mix_ablation(benchmark):
    params = SIM_SCALE_PARAMS.with_update_probability(0.5)

    def measure():
        table = {}
        for mix_name, weights in MIXES.items():
            for strategy in STRATEGIES:
                run = run_workload(
                    params,
                    strategy,
                    model=2,
                    num_operations=200,
                    seed=37,
                    update_weights=weights,
                )
                table[(mix_name, strategy)] = run.cost_per_access_ms
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'mix':>10s} " + " ".join(f"{s:>18s}" for s in STRATEGIES)]
    for mix_name in MIXES:
        lines.append(
            f"{mix_name:>10s} "
            + " ".join(f"{table[(mix_name, s)]:18.1f}" for s in STRATEGIES)
        )
    text = (
        "cost/access (ms) as updates shift from R1 to R2 "
        "(model 2, P=0.5):\n" + "\n".join(lines)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_update_mix.txt").write_text(text + "\n")
    print()
    print(text)

    # Always Recompute does not care who is updated (within noise)...
    ar = [table[(mix, "always_recompute")] for mix in MIXES]
    assert max(ar) < 1.5 * min(ar)
    # ...while both Update Cache variants get more expensive as the update
    # pattern drifts away from the one their plans were built for.
    for strategy in ("update_cache_avm", "update_cache_rvm"):
        assert (
            table[("mostly_r2", strategy)] > table[("r1_only", strategy)]
        ), strategy
    # At the paper's pattern UC wins; shifted far enough, it can lose its
    # advantage over recompute entirely (assert only the gap narrows, the
    # exact flip point is parameter-dependent).
    def advantage(mix):
        return table[(mix, "always_recompute")] - table[(mix, "update_cache_rvm")]

    assert advantage("mostly_r2") < advantage("r1_only")
