"""Figure 12: winner regions over (update probability, object size),
model 1.

Paper shape: three bands — Update Cache wins the low-P region, Always
Recompute the high-P region; Cache and Invalidate's outright-win region is
insignificant (but it is within 2x of UC near the boundary — figure 14).
An interesting paper observation: UC's winning P-range *shrinks* as objects
grow, because large objects are touched by almost every update.
"""


def test_fig12_winner_regions_model1(regenerate):
    result = regenerate("fig12")
    grid = result.grid

    assert all(label == "update_cache" for label in grid.labels[0])
    assert all(label == "always_recompute" for label in grid.labels[-1])

    # CI's outright-win region is insignificant.
    assert grid.fraction("cache_invalidate") <= 0.1

    # UC's winning extent (in P) is monotone non-increasing with f.
    extents = [
        sum(1 for row in grid.labels if row[j] == "update_cache")
        for j in range(len(grid.f_values))
    ]
    assert all(b <= a for a, b in zip(extents, extents[1:]))
