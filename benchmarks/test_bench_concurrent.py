"""Multiprogramming-level sweep benches (beyond the paper).

The paper's cost model is single-stream; these benches run the five
strategies through the discrete-event concurrency engine at MPL 1, 4 and
16 — same total operation count at every level, so throughput movement is
contention, not workload size — and write the sweep table to
``results/concurrent_sweep.txt``. Scaled down in N for wall-clock
reasons; the cost clock does the measuring.
"""

import pathlib

from repro.concurrent import (
    CONCURRENT_STRATEGIES,
    concurrent_sweep,
    render_concurrent_table,
)
from repro.experiments.simcompare import SIM_SCALE_PARAMS

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

MPLS = (1, 4, 16)
NUM_OPERATIONS = 240
SEED = 7


def _write(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


def test_concurrent_mpl_sweep(benchmark):
    results = benchmark.pedantic(
        concurrent_sweep,
        kwargs=dict(
            params=SIM_SCALE_PARAMS.with_update_probability(0.5),
            strategies=CONCURRENT_STRATEGIES,
            mpls=MPLS,
            model=1,
            num_operations=NUM_OPERATIONS,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    text = render_concurrent_table(results)
    _write("concurrent_sweep.txt", text)

    assert len(results) == len(CONCURRENT_STRATEGIES) * len(MPLS)
    by_key = {(r.strategy, r.mpl): r for r in results}
    for strategy in CONCURRENT_STRATEGIES:
        for mpl in MPLS:
            r = by_key[(strategy, mpl)]
            # Every operation commits at every MPL — no lost work.
            assert sum(r.per_session_committed) == NUM_OPERATIONS, text
            assert r.throughput_ops_per_s > 0, text
            summary = r.latency_summary("access")
            assert summary["p50"] <= summary["p95"] <= summary["p99"], text
        # MPL=1 has nothing to contend with.
        serial = by_key[(strategy, 1)]
        assert serial.blocked_ms_total == 0.0, text
        assert serial.aborts == 0, text
