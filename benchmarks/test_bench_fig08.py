"""Figure 8: query cost vs update probability for single-tuple objects
(f = 1/N, N1 = 100, N2 = 0).

Paper shape: with one-tuple objects, Cache and Invalidate is essentially
equivalent to Update Cache — invalidate-and-recompute of a single tuple
costs about the same as incrementally updating it — except that CI's cost
stays bounded at high update probability.
"""

from conftest import series_at


def test_fig08_single_tuple_objects(regenerate):
    result = regenerate("fig08")

    # Essential equivalence at low-to-moderate P.
    for p in (0.0, 0.1, 0.2, 0.3, 0.4):
        ci = series_at(result, "cache_invalidate", p)
        uc = series_at(result, "update_cache_avm", p)
        assert abs(ci - uc) <= 0.35 * uc

    # CI tracks AR's plateau at high P; UC keeps climbing.
    assert series_at(result, "cache_invalidate", 0.9) <= 1.1 * series_at(
        result, "always_recompute", 0.9
    )
    assert series_at(result, "update_cache_avm", 0.9) > series_at(
        result, "cache_invalidate", 0.9
    )
