"""Validation bench for Appendix A: the page-access estimator.

The paper justifies Cardenas' approximation as "very close [to Yao's exact
formula] if the blocking factor is large (e.g. n/m > 10)" and patches the
small cases piecewise. This bench quantifies both claims over the
parameter ranges the cost model actually exercises, and additionally
cross-checks the *piecewise estimator* against the measured page counts of
the storage engine's batched fetches.
"""

import pathlib
import random

from repro.model import cardenas, yao, yao_exact
from repro.sim import CostClock
from repro.storage import BufferPool, Catalog, DiskManager, Field, Schema

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def test_cardenas_error_bound(benchmark):
    """Max relative error of Cardenas vs exact Yao at blocking factor 40
    (the paper's 100-byte tuples in 4 000-byte blocks)."""

    def worst_error():
        worst = 0.0
        for m in (5, 25, 100, 250):
            n = m * 40
            for k in (2, 5, 10, 50, 100, 500, 2000):
                if k > n:
                    continue
                exact = yao_exact(n, m, k)
                approx = cardenas(m, k)
                worst = max(worst, abs(approx - exact) / exact)
        return worst

    worst = benchmark(worst_error)
    print(f"\nworst Cardenas relative error at blocking factor 40: {worst:.4f}")
    assert worst < 0.02  # "very close" indeed


def test_estimator_matches_measured_page_counts(benchmark):
    """The piecewise y(n, m, k) tracks the engine's actual distinct-page
    counts for random batched fetches (expectation vs sample mean)."""

    def measure():
        clock = CostClock()
        catalog = Catalog(BufferPool(DiskManager(clock)))
        relation = catalog.create_relation(
            "T", Schema([Field("id"), Field("pay")], tuple_bytes=100)
        )
        rng = random.Random(47)
        rids = [relation.insert((i, 0)) for i in range(4000)]  # 100 pages
        rows = []
        for k in (1, 4, 16, 64, 256):
            trials = 40
            total_pages = 0
            for _ in range(trials):
                sample = rng.sample(rids, k)
                before = clock.snapshot()
                relation.fetch_batched(sample)
                total_pages += (clock.snapshot() - before).disk_reads
            measured = total_pages / trials
            predicted = yao(4000, 100, k)
            rows.append((k, measured, predicted))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'k':>6s} {'measured':>10s} {'y(n,m,k)':>10s}"]
    for k, measured, predicted in rows:
        lines.append(f"{k:6d} {measured:10.2f} {predicted:10.2f}")
    text = (
        "distinct pages touched: engine measurement vs Appendix-A "
        "estimator\n(n=4000 tuples, m=100 pages):\n" + "\n".join(lines)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "yao_accuracy.txt").write_text(text + "\n")
    print()
    print(text)

    for _k, measured, predicted in rows:
        assert abs(measured - predicted) / predicted < 0.12


def test_piecewise_rules_cover_small_objects(benchmark):
    """The paper's special cases: fractional expectations pass through,
    sub-page objects cost one page, tiny objects min(k, m)."""

    def check():
        assert yao(100, 2.5, 0.05) == 0.05  # k <= 1
        assert yao(10, 0.25, 5) == 1.0  # m < 1
        assert yao(100, 1.5, 3) == 1.5  # m < U
        return True

    assert benchmark(check)
