"""Ablation: the space side of subexpression sharing (not a paper figure).

The paper evaluates time only. Sharing has a second effect the analysis
never prices: a shared α-memory is *stored once*. This bench sweeps the
sharing factor and reports both axes for the two Update Cache variants.
What it shows: AVM's footprint is flat (one private materialisation per
procedure, nothing else); RVM always pays extra space for its interior
memory nodes (the right-side α-memories that buy its maintenance speed),
and sharing claws a sizeable part of that overhead back as SF rises — a
space-time trade the paper's time-only analysis hides.
"""

import pathlib

from repro.experiments.simcompare import SIM_SCALE_PARAMS
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

SF_VALUES = (0.0, 0.5, 1.0)


def test_sharing_space_time_tradeoff(benchmark):
    params = SIM_SCALE_PARAMS.with_update_probability(0.5)

    def measure():
        table = {}
        for sf in SF_VALUES:
            point = params.replace(sharing_factor=sf)
            for strategy in ("update_cache_avm", "update_cache_rvm"):
                run = run_workload(
                    point, strategy, num_operations=150, seed=43
                )
                table[(sf, strategy)] = (run.cost_per_access_ms, run.space_pages)
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'SF':>5s} {'AVM ms':>9s} {'AVM pages':>10s} {'RVM ms':>9s} {'RVM pages':>10s}"]
    for sf in SF_VALUES:
        avm_cost, avm_pages = table[(sf, "update_cache_avm")]
        rvm_cost, rvm_pages = table[(sf, "update_cache_rvm")]
        lines.append(
            f"{sf:5.1f} {avm_cost:9.1f} {avm_pages:10d} "
            f"{rvm_cost:9.1f} {rvm_pages:10d}"
        )
    text = "sharing factor vs cost and cache footprint:\n" + "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_space.txt").write_text(text + "\n")
    print()
    print(text)

    # AVM's footprint ignores SF; RVM's shrinks monotonically with it.
    avm_pages = [table[(sf, "update_cache_avm")][1] for sf in SF_VALUES]
    rvm_pages = [table[(sf, "update_cache_rvm")][1] for sf in SF_VALUES]
    assert max(avm_pages) - min(avm_pages) <= 0.02 * max(avm_pages)
    assert rvm_pages[0] > rvm_pages[1] > rvm_pages[2]
    # RVM's interior memories mean it always out-stores AVM here; sharing
    # recovers a meaningful slice of that overhead.
    assert rvm_pages[0] > avm_pages[0]
    overhead_sf0 = rvm_pages[0] - avm_pages[0]
    overhead_sf1 = rvm_pages[-1] - avm_pages[-1]
    assert overhead_sf1 < 0.75 * overhead_sf0
