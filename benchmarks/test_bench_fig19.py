"""Figure 19: winner regions over (P, f), model 2.

Paper shape: 'similar to Figure 12 for Model 1, except that the best
version of Update Cache is RVM instead of AVM'.
"""

from repro.experiments import run_experiment
from repro.model import ModelParams, cost_of


def test_fig19_winner_regions_model2(regenerate):
    result = regenerate("fig19")
    grid = result.grid
    model1_grid = run_experiment("fig12").grid

    assert all(label == "update_cache" for label in grid.labels[0])
    assert all(label == "always_recompute" for label in grid.labels[-1])

    # Region structure mirrors model 1's.
    agreement = sum(
        1
        for row_a, row_b in zip(grid.labels, model1_grid.labels)
        for cell_a, cell_b in zip(row_a, row_b)
        if cell_a == cell_b
    )
    assert agreement / grid.num_cells >= 0.8

    # The best UC variant in model 2 is RVM across representative cells.
    params = ModelParams()
    for p_value, f_value in ((0.1, 0.001), (0.4, 0.0005), (0.3, 0.01)):
        point = params.replace(selectivity_f=f_value).with_update_probability(
            p_value
        )
        assert (
            cost_of("update_cache_rvm", point, 2).total_ms
            < cost_of("update_cache_avm", point, 2).total_ms
        )
