"""Figure 4: query cost vs update probability with the naive 2-I/O
invalidation scheme (C_inval = 60 ms).

Paper shape: Cache and Invalidate's cost is highly sensitive to C_inval —
with the naive scheme it climbs past Always Recompute well before the
plateau, while both Update Cache variants are unaffected by C_inval.
"""

from conftest import series_at

from repro.experiments import run_experiment


def test_fig04_high_invalidation_cost(regenerate):
    result = regenerate("fig04")
    free = run_experiment("fig05")

    # CI pays heavily for invalidation recording; UC curves are identical
    # to the free-invalidation figure.
    assert series_at(result, "cache_invalidate", 0.5) > 1.3 * series_at(
        free, "cache_invalidate", 0.5
    )
    for strategy in ("update_cache_avm", "update_cache_rvm", "always_recompute"):
        assert series_at(result, strategy, 0.5) == series_at(free, strategy, 0.5)

    # With costly invalidation CI is worse than even Always Recompute at
    # moderate update probabilities — the paper's argument for keeping
    # C_inval small.
    assert series_at(result, "cache_invalidate", 0.5) > series_at(
        result, "always_recompute", 0.5
    )
