"""Figure 13: winner regions over (P, f) under high locality (Z = 0.05).

Paper shape: Cache and Invalidate benefits from locality but Update Cache
does not, so CI claims a real region — concentrated on small objects
(f < ~0.002), where incrementally updating an object costs nearly as much
as recomputing it.
"""

from repro.experiments import run_experiment


def test_fig13_winner_regions_high_locality(regenerate):
    result = regenerate("fig13")
    grid = result.grid
    default_grid = run_experiment("fig12").grid

    # Locality grows CI's winning region from (near) nothing.
    assert grid.count("cache_invalidate") > default_grid.count(
        "cache_invalidate"
    )

    # CI's wins concentrate on small objects.
    small_cols = [j for j, f in enumerate(grid.f_values) if f < 0.002]
    ci_cells = [
        (i, j)
        for i, row in enumerate(grid.labels)
        for j, label in enumerate(row)
        if label == "cache_invalidate"
    ]
    assert ci_cells, "expected CI to win somewhere under high locality"
    assert all(j in small_cols for _i, j in ci_cells)
