"""Simulated winner grid: Figure 12's region structure, measured.

The region figures (12/13/19) come from the analytical model. This bench
replays a coarse (P, f) grid through the *executable* strategies and
checks that the measured winner in each cell agrees with the model's label
— the strongest end-to-end statement the reproduction makes: the map the
paper drew emerges from running the actual algorithms.
"""

import pathlib

from repro.experiments.simcompare import SIM_SCALE_PARAMS
from repro.model.regions import winner_grid
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

P_VALUES = [0.1, 0.5, 0.9]
# f values at simulation scale (N=10k): one-page, three-page, 13-page P1s.
F_VALUES = [0.004, 0.012, 0.05]
STRATEGIES = (
    "always_recompute",
    "cache_invalidate",
    "update_cache_avm",
    "update_cache_rvm",
)


def _sim_winner(p_value: float, f_value: float) -> str:
    params = SIM_SCALE_PARAMS.replace(
        selectivity_f=f_value
    ).with_update_probability(p_value)
    costs = {}
    for strategy in STRATEGIES:
        run = run_workload(
            params, strategy, num_operations=200, seed=19
        )
        costs[strategy] = run.cost_per_access_ms
    best = min(costs, key=costs.__getitem__)
    if best.startswith("update_cache"):
        return "update_cache"
    return best


def test_simulated_winner_grid_matches_model(benchmark):
    def measure():
        return {
            (p, f): _sim_winner(p, f) for p in P_VALUES for f in F_VALUES
        }

    simulated = benchmark.pedantic(measure, rounds=1, iterations=1)
    model_grid = winner_grid(SIM_SCALE_PARAMS, P_VALUES, F_VALUES, model=1)

    header = "P / f"
    lines = [f"{header:>6s} " + " ".join(f"{f:>14g}" for f in F_VALUES)]
    agreements = 0
    cells = []
    for i, p_value in enumerate(P_VALUES):
        row = []
        for j, f_value in enumerate(F_VALUES):
            sim_label = simulated[(p_value, f_value)]
            model_label = model_grid.labels[i][j]
            agree = sim_label == model_label
            agreements += agree
            cells.append((p_value, f_value, sim_label, model_label))
            row.append(f"{sim_label[:10]}{'=' if agree else '!'}")
        lines.append(f"{p_value:6g} " + " ".join(f"{cell:>14s}" for cell in row))
    text = (
        "simulated winners (cell suffix '=' agrees with model, '!' differs):\n"
        + "\n".join(lines)
        + f"\nagreement: {agreements}/{len(cells)}"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sim_winner_grid.txt").write_text(text + "\n")
    print()
    print(text)

    # The corners the paper's narrative rests on must agree exactly:
    assert simulated[(0.1, F_VALUES[0])] == "update_cache"
    assert simulated[(0.9, F_VALUES[-1])] == "always_recompute"
    # And overall agreement must be strong (cells near a boundary may
    # legitimately flip under simulation noise).
    assert agreements >= 7, text
