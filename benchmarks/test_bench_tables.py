"""Benches for the paper's tables: Figure 2 (parameters) and the §3
access-method table."""


def test_parameter_table(regenerate):
    result = regenerate("table_fig2")
    symbols = [row[0] for row in result.table_rows]
    # Every Figure-2 symbol appears.
    for symbol in ("N", "S", "B", "k", "l", "q", "d", "SF", "f", "f2",
                   "fR2", "fR3", "C1", "C2", "C3", "C_inval"):
        assert symbol in symbols
    values = {row[0]: row[2] for row in result.table_rows}
    assert values["N"] == "100000"
    assert values["C2"] == "30"
    assert values["f"] == "0.001"


def test_access_methods(regenerate):
    result = regenerate("table_access_methods")
    relations = [row[0] for row in result.table_rows]
    assert relations == ["R1", "R2", "R3"]
    assert "B-tree" in result.table_rows[0][1]
    assert "hash" in result.table_rows[1][1]
