"""Ablation: static vs dynamic delta-join planning for AVM.

The paper (§2): "A dynamically optimized version of AVM exists which finds
execution plans for evaluating expressions at run time [BLT86]. The
advantage of static optimization is the low planning overhead. However,
the disadvantage is that the execution plan for maintaining views may not
always be optimal." And §8 warns that a fixed plan "may become more costly
... if the structure of the database or the update frequency changes".

This bench measures both halves on a star query

    R1 |><| R2 |><| R4 (unrestricted, wide fan-out)
             |><| R3 (selective restriction)

whose *compiled* attach order (R2, R4, R3) is deliberately suboptimal:
attaching the selective R3 branch first prunes most partial tuples, which
shrinks the probe-key set — and therefore the page reads — of the
expensive R4 branch.

1. static policy: pays the compiled order's full R4 probe cost;
2. dynamic policy: re-plans per delta (charged ``planning_cost_ms``),
   attaches R3 first, and probes R4 with a fraction of the keys.
"""

import pathlib
import random

from repro.core import ProcedureManager, UpdateCacheAVM
from repro.query import Interval, Join, RelationRef, Select
from repro.query.predicate import And
from repro.sim import CostClock
from repro.storage import BufferPool, Catalog, DiskManager, Field, Schema

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

PLANNING_COST_MS = 2.0
N1, N2, N3, N4 = 2000, 200, 200, 2000
R4_PER_KEY = 8  # R4 rows per join key: the expensive fan-out


def _build(seed=31):
    clock = CostClock()
    catalog = Catalog(BufferPool(DiskManager(clock)))
    rng = random.Random(seed)

    r3 = catalog.create_relation(
        "R3", Schema([Field("id3"), Field("d"), Field("sel3")], 100)
    )
    for m in range(N3):
        r3.insert((m, m, rng.randrange(N3)))
    r3.create_hash_index("d")

    r4 = catalog.create_relation(
        "R4", Schema([Field("id4"), Field("g"), Field("pay4")], 100)
    )
    for m in range(N4):
        r4.insert((m, m % (N4 // R4_PER_KEY), rng.randrange(100)))
    r4.create_hash_index("g")

    r2 = catalog.create_relation(
        "R2",
        Schema([Field("id2"), Field("b"), Field("c"), Field("e")], 100),
    )
    for j in range(N2):
        r2.insert((j, j, rng.randrange(N3), rng.randrange(N4 // R4_PER_KEY)))
    r2.create_hash_index("b")

    r1 = catalog.create_relation(
        "R1", Schema([Field("id1"), Field("sel"), Field("a")], 100)
    )
    for i in range(N1):
        r1.insert((i, rng.randrange(N1), rng.randrange(N2)))
    r1.create_btree_index("sel")
    clock.reset()
    return catalog, clock, rng


def _star_procedure(lo: int, hi: int):
    """Compiled attach order: R2, then R4 (expensive), then R3 (selective)
    — suboptimal on purpose."""
    return Select(
        Join(
            Join(
                Join(RelationRef("R1"), RelationRef("R2"), "a", "b"),
                RelationRef("R4"),
                "e",
                "g",
            ),
            RelationRef("R3"),
            "c",
            "d",
        ),
        And(Interval("sel", lo, hi), Interval("sel3", 0, N3 // 10)),
    )


def _measure(policy: str, seed=31) -> tuple[float, list[str]]:
    catalog, clock, rng = _build(seed)
    strategy = UpdateCacheAVM(
        catalog,
        catalog.buffer,
        clock,
        result_tuple_bytes=100,
        delta_policy=policy,
        planning_cost_ms=PLANNING_COST_MS if policy == "dynamic" else 0.0,
    )
    manager = ProcedureManager(strategy)
    for p in range(5):
        lo = p * (N1 // 5)
        manager.define_procedure(f"P{p}", _star_procedure(lo, lo + N1 // 5))
    r1 = catalog.get("R1")
    rids = [rid for rid, _row in r1.heap.scan_uncharged()]
    for _ in range(30):
        changes = []
        for rid in rng.sample(rids, 8):
            old = r1.heap.read(rid)
            changes.append((rid, (old[0], rng.randrange(N1), old[2])))
        manager.update("R1", changes)
    cost = manager.maintenance_cost_ms / manager.num_updates
    # Probe the attach order with a known in-interval delta row.
    joiner = strategy._joiners["P0"]
    joiner.compute("R1", [(999_999, 10, 0)])
    return cost, list(joiner.last_attach_order)


def test_planning_policy_ablation(benchmark):
    def measure():
        return {policy: _measure(policy) for policy in ("static", "dynamic")}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{policy:8s} {cost:9.1f} ms/update  attach order {order}"
        for policy, (cost, order) in results.items()
    ]
    text = (
        "AVM maintenance cost, star query, compiled order deliberately "
        "suboptimal:\n" + "\n".join(lines)
        + f"\n(dynamic pays {PLANNING_COST_MS} ms planning per delta batch)"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_planning.txt").write_text(text + "\n")
    print()
    print(text)

    static_cost, static_order = results["static"]
    dynamic_cost, dynamic_order = results["dynamic"]
    # The compiled order attaches the expensive R4 branch before the
    # selective R3 branch; the dynamic planner flips them.
    assert static_order and static_order[1] == "R4"
    assert dynamic_order and dynamic_order[1] == "R3"
    # And that reordering wins despite the per-delta planning charge.
    assert dynamic_cost < static_cost


def test_dynamic_is_pure_overhead_on_already_optimal_plans(benchmark):
    """The flip side (the paper's case for static optimization): on the
    paper's own 3-way procedures, deltas always arrive on R1 and the
    compiled order is already optimal, so dynamic planning can only add
    its planning charge."""
    from repro.experiments.simcompare import SIM_SCALE_PARAMS
    from repro.workload import build_database, build_procedures
    import random as _random

    def measure():
        out = {}
        params = SIM_SCALE_PARAMS.with_update_probability(0.5)
        for policy in ("static", "dynamic"):
            db = build_database(params, seed=41)
            pop = build_procedures(db, params, model=2, seed=41)
            strategy = UpdateCacheAVM(
                db.catalog,
                db.buffer,
                db.clock,
                result_tuple_bytes=params.tuple_bytes,
                delta_policy=policy,
                planning_cost_ms=PLANNING_COST_MS if policy == "dynamic" else 0.0,
            )
            manager = ProcedureManager(strategy)
            for name, expr in pop.definitions:
                manager.define_procedure(name, expr)
            rng = _random.Random(41)
            for _ in range(40):
                positions = rng.sample(range(len(db.r1_rids)), 10)
                changes = []
                for pos in positions:
                    rid = db.r1_rids[pos]
                    old = db.r1.heap.read(rid)
                    changes.append(
                        (rid, (old[0], rng.randrange(db.sel_domain), old[2]))
                    )
                manager.update("R1", changes, cluster_field="sel")
                for pos, new_rid in zip(positions, manager.last_rids):
                    db.r1_rids[pos] = new_rid
            out[policy] = manager.maintenance_cost_ms / manager.num_updates
        return out

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        f"paper workload (deltas on R1): static {costs['static']:.1f}, "
        f"dynamic {costs['dynamic']:.1f} ms/update"
    )
    assert costs["dynamic"] >= costs["static"]
    # The gap is bounded by the planning charge per affected procedure.
    assert costs["dynamic"] - costs["static"] <= PLANNING_COST_MS * 50
