"""Benchmark helpers.

Every bench regenerates one of the paper's tables/figures (timed with
pytest-benchmark), asserts the embedded paper-claim checks, prints the same
rows/series the paper reports, and writes the rendering to
``results/<figure_id>.txt`` (plus a schema-versioned
``results/<figure_id>.json``) so the regenerated data survives the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import render_result, run_experiment
from repro.experiments.export import write_json
from repro.experiments.figures import FigureResult

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def regenerate(benchmark):
    """Regenerate a figure under the benchmark timer and validate it."""

    def _run(figure_id: str) -> FigureResult:
        result = benchmark(run_experiment, figure_id)
        assert result.all_checks_pass, (
            f"{figure_id} failed paper-claim checks: {result.failed_checks()}"
        )
        text = render_result(
            result, chart=result.kind in ("curves", "sf_curves")
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{figure_id}.txt").write_text(text + "\n")
        write_json(result, str(RESULTS_DIR / f"{figure_id}.json"))
        print()
        print(text)
        return result

    return _run


def series_at(result: FigureResult, strategy: str, x: float) -> float:
    """A named series' value at x (exact match against the sweep grid)."""
    index = result.x_values.index(x)
    return result.series[strategy][index]
