"""Simulation-vs-model validation benches (not a paper figure).

The paper's numbers are analytical; these benches run the *actual*
strategies — real B-tree, real Rete network, real i-locks — on the
simulated-I/O engine and assert that the analytical orderings and shapes
emerge from measurement. Scaled down in N for wall-clock reasons; the cost
clock does the measuring, so the scale only affects noise.
"""

import pathlib

from repro.experiments.simcompare import (
    SIM_SCALE_PARAMS,
    render_comparison,
    sim_model_comparison,
)
from repro.workload import run_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def _write(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


def test_simulator_vs_model_default_point(benchmark):
    points = benchmark.pedantic(
        sim_model_comparison,
        kwargs=dict(
            params=SIM_SCALE_PARAMS, model=1, num_operations=300, seed=13
        ),
        rounds=1,
        iterations=1,
    )
    text = render_comparison(points)
    _write("sim_vs_model_model1.txt", text)
    by_name = {p.strategy: p for p in points}
    # Agreement within 2x per strategy...
    for point in points:
        assert 0.5 <= point.ratio <= 2.0, text
    # ...and the model-1 ordering at P=0.5 reproduced by measurement.
    assert (
        by_name["update_cache_avm"].simulated_ms
        < by_name["cache_invalidate"].simulated_ms
        < by_name["always_recompute"].simulated_ms * 1.2
    )


def test_simulated_p_sweep_reproduces_fig05_shape(benchmark):
    """A coarse simulated version of figure 5: three P points, three
    strategies, measured."""

    def sweep():
        rows = {}
        for p_value in (0.1, 0.5, 0.8):
            params = SIM_SCALE_PARAMS.with_update_probability(p_value)
            rows[p_value] = {
                name: run_workload(
                    params, name, num_operations=240, seed=21
                ).cost_per_access_ms
                for name in (
                    "always_recompute",
                    "cache_invalidate",
                    "update_cache_avm",
                )
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'P':>5s} {'AR':>10s} {'CI':>10s} {'UC-AVM':>10s}"]
    for p_value, costs in rows.items():
        lines.append(
            f"{p_value:5.2f} {costs['always_recompute']:10.1f} "
            f"{costs['cache_invalidate']:10.1f} "
            f"{costs['update_cache_avm']:10.1f}"
        )
    _write("sim_fig05_sweep.txt", "\n".join(lines))

    # Figure-5 shape, measured: UC wins at low P; UC cost rises steeply
    # with P; CI approaches AR at high P; AR is ~flat.
    assert rows[0.1]["update_cache_avm"] < rows[0.1]["always_recompute"]
    assert rows[0.8]["update_cache_avm"] > 3 * rows[0.1]["update_cache_avm"]
    assert rows[0.8]["cache_invalidate"] < 1.6 * rows[0.8]["always_recompute"]
    ar = [rows[p]["always_recompute"] for p in (0.1, 0.5, 0.8)]
    assert max(ar) < 1.5 * min(ar)


def test_simulated_sharing_flip_fig11_vs_fig18(benchmark):
    """Measured version of the AVM/RVM flip: model 1 favours AVM at SF=0,
    model 2 favours RVM at SF=1."""

    def measure():
        out = {}
        no_share = SIM_SCALE_PARAMS.replace(
            sharing_factor=0.0
        ).with_update_probability(0.5)
        full_share = SIM_SCALE_PARAMS.replace(
            sharing_factor=1.0
        ).with_update_probability(0.5)
        for label, params, model in (
            ("m1_sf0_avm", no_share, 1),
            ("m2_sf1_avm", full_share, 2),
        ):
            out[label] = run_workload(
                params, "update_cache_avm", model=model,
                num_operations=200, seed=5,
            ).cost_per_access_ms
        for label, params, model in (
            ("m1_sf0_rvm", no_share, 1),
            ("m2_sf1_rvm", full_share, 2),
        ):
            out[label] = run_workload(
                params, "update_cache_rvm", model=model,
                num_operations=200, seed=5,
            ).cost_per_access_ms
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    _write(
        "sim_sharing_flip.txt",
        "\n".join(f"{k}: {v:.1f} ms" for k, v in sorted(out.items())),
    )
    assert out["m1_sf0_avm"] <= out["m1_sf0_rvm"] * 1.05
    assert out["m2_sf1_rvm"] < out["m2_sf1_avm"]
