"""Ablation: WAL checkpoint interval for the logged validity map.

The paper (§3): "If the data structure is checkpointed periodically, it
can be recovered by playing the latest part of the log against the last
checkpoint after a crash." Checkpointing is the classic runtime-vs-
recovery trade: frequent checkpoints cost snapshot writes during normal
operation but leave little log to replay after a crash. This bench
measures both sides on the actual WAL implementation.
"""

import pathlib

from repro.recovery import WalScheme
from repro.sim import CostClock

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

NUM_PROCEDURES = 100
TRANSITIONS = 3_000
INTERVALS = (0, 50, 200, 1000)  # 0 = never checkpoint


def _run_interval(checkpoint_every: int) -> tuple[float, float, int]:
    """Returns (runtime_ms, recovery_ms, replayed_records)."""
    clock = CostClock()
    scheme = WalScheme(
        clock,
        checkpoint_every=checkpoint_every,
        records_per_page=200,
        force_on_invalidate=False,  # group commit; isolates checkpoint cost
    )
    for i in range(NUM_PROCEDURES):
        scheme.register(f"P{i}")
    for i in range(TRANSITIONS):
        name = f"P{i % NUM_PROCEDURES}"
        if i % 2 == 0:
            scheme.mark_valid(name)
        else:
            scheme.mark_invalid(name)
    runtime = clock.elapsed_ms

    before = clock.snapshot()
    scheme.map.crash()
    replay_len = scheme.wal.durable_length
    scheme.map.recover(scheme._registered)
    recovery = clock.elapsed_since(before)
    return runtime, recovery, replay_len


def test_checkpoint_interval_tradeoff(benchmark):
    def measure():
        return {interval: _run_interval(interval) for interval in INTERVALS}

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'interval':>9s} {'runtime ms':>11s} {'recovery ms':>12s} {'replayed':>9s}"
    ]
    for interval in INTERVALS:
        runtime, recovery, replayed = table[interval]
        label = str(interval) if interval else "never"
        lines.append(
            f"{label:>9s} {runtime:11.1f} {recovery:12.1f} {replayed:9d}"
        )
    text = (
        f"WAL checkpoint interval trade-off "
        f"({TRANSITIONS} transitions, {NUM_PROCEDURES} procedures):\n"
        + "\n".join(lines)
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_checkpoint.txt").write_text(text + "\n")
    print()
    print(text)

    # Runtime cost rises as checkpoints get more frequent...
    runtimes = [table[i][0] for i in INTERVALS]
    assert runtimes[0] <= runtimes[-1] <= runtimes[2] <= runtimes[1]
    # ...while recovery cost and replay length fall.
    assert table[50][1] < table[0][1]
    assert table[50][2] < table[0][2]
    # Recovery is always *correct*: spot-check the recovered map against
    # ground truth for the never-checkpoint run.
    clock = CostClock()
    scheme = WalScheme(clock, checkpoint_every=0, force_on_invalidate=True)
    for i in range(5):
        scheme.register(f"P{i}")
    scheme.mark_valid("P0")
    scheme.mark_invalid("P0")
    scheme.mark_valid("P1")
    scheme.crash_and_recover()
    assert not scheme.is_valid("P0")
