#!/usr/bin/env python3
"""Regenerate the paper's key figures as text tables.

Renders the three most load-bearing results of the paper — the default
cost-vs-P comparison (Figure 5), the model-2 AVM/RVM sharing crossover
(Figure 18), and the winner-region map (Figure 12) — with every embedded
paper-claim check evaluated. For all 15 figures plus the two tables, run
``python -m repro all`` or the benchmark suite.

Run:  python examples/reproduce_figures.py
"""

from repro import render_result, run_experiment


def main() -> None:
    for figure_id in ("fig05", "fig18", "fig12"):
        result = run_experiment(figure_id)
        print(render_result(result))
        print()
        if not result.all_checks_pass:
            raise SystemExit(
                f"{figure_id} failed checks: {result.failed_checks()}"
            )
    print("All checks passed — the regenerated data matches the paper's "
          "stated shapes.")


if __name__ == "__main__":
    main()
