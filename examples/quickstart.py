#!/usr/bin/env python3
"""Quickstart: the paper's headline comparison in a dozen lines.

Computes the analytical cost of each strategy at the paper's default
parameters (model 1), then runs the same comparison in the executable
simulator at laptop scale and prints both side by side.

Run:  python examples/quickstart.py
"""

from repro import ModelParams, run_workload, strategy_costs

# --- 1. The paper's analytical model at Figure-2 defaults -------------------

params = ModelParams()  # N=100k tuples, P=0.5, f=0.001, C2=30ms, ...
print("Analytical cost per procedure access (model 1, paper defaults):")
for name, breakdown in strategy_costs(params, model=1).items():
    print(f"  {name:22s} {breakdown.total_ms:8.1f} simulated ms")

# --- 2. The same comparison, measured --------------------------------------

sim_params = params.replace(
    n_tuples=10_000,        # laptop scale; the cost *clock* still measures
    num_p1=25,
    num_p2=25,
    selectivity_f=0.004,    # keeps per-object page counts at paper scale
    tuples_per_update=10,
)

print("\nSimulated cost per procedure access (same point, scaled N):")
for name in ("always_recompute", "cache_invalidate",
             "update_cache_avm", "update_cache_rvm"):
    result = run_workload(sim_params, name, num_operations=300, seed=1)
    print(
        f"  {name:22s} {result.cost_per_access_ms:8.1f} simulated ms "
        f"({result.num_accesses} accesses, {result.num_updates} updates)"
    )

print(
    "\nBoth layers agree on the paper's conclusion at P=0.5: Update Cache "
    "wins,\nCache and Invalidate trails it, Always Recompute pays full "
    "price every read."
)
