#!/usr/bin/env python3
"""Scenario: choosing a strategy per workload (the paper's open problem).

Section 8 of the paper leaves open "how to decide whether or not to
maintain a cached copy of a given object". This example uses the
reproduction's :func:`repro.model.recommend` advisor — the paper's own
cost model turned into a decision procedure — across a portfolio of
workload profiles, including the risk-adjusted variant that encodes the
paper's "Cache and Invalidate is a much safer algorithm" argument.

Run:  python examples/strategy_advisor.py
"""

from repro.model import ModelParams, implementation_stage, recommend

PROFILES = {
    # (description, params, model)
    "reporting dashboard": (
        "large objects, hourly refresh, read-dominated",
        ModelParams(selectivity_f=0.01).with_update_probability(0.05),
        1,
    ),
    "reference lookups": (
        "tiny objects, rare updates, heavy read locality",
        ModelParams(selectivity_f=0.0001, locality=0.05).with_update_probability(0.1),
        1,
    ),
    "order-entry forms": (
        "3-way-join objects, balanced read/write, shared subexpressions",
        ModelParams(sharing_factor=0.8).with_update_probability(0.4),
        2,
    ),
    "telemetry ingest": (
        "update-dominated; reads are occasional audits",
        ModelParams().with_update_probability(0.85),
        1,
    ),
}


def main() -> None:
    print(__doc__)
    header = (
        f"{'workload':22s} {'point-optimal':18s} {'risk-adjusted':18s} "
        f"{'vs recompute':>12s}"
    )
    print(header)
    print("-" * len(header))
    for name, (description, params, model) in PROFILES.items():
        rec = recommend(
            params, model=model, update_probability_uncertainty=0.3
        )
        print(
            f"{name:22s} {rec.best:18s} {rec.risk_adjusted:18s} "
            f"{rec.speedup_over('always_recompute'):11.1f}x"
        )
        print(f"  ({description})")
        for line in rec.rationale:
            print(f"   - {line}")
        print()

    print("Paper §8 staged implementation plan, by available effort:")
    for effort in range(1, 5):
        stages = ", ".join(implementation_stage(effort))
        print(f"  effort {effort}: {stages}")


if __name__ == "__main__":
    main()
