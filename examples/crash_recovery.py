#!/usr/bin/env python3
"""Scenario: durable invalidation without paying two I/Os per event.

Section 3 of the paper worries about how Cache and Invalidate *records*
invalidations durably. The naive scheme flags the cached object's first
page — 2 I/Os (60 ms) per invalidation — and Figure 4 shows that wrecking
CI's competitiveness. The paper's fix: keep the validity map in memory and
make it recoverable with a write-ahead log plus checkpoints [Gra78], or
battery-backed RAM.

This example runs the actual WAL implementation (`repro.recovery`): a CI
strategy processes updates and accesses, the "machine" crashes twice, the
validity map is rebuilt from checkpoint + log replay, and every answer is
verified against an Always Recompute oracle — while costing a fraction of
the page-flag scheme.

Run:  python examples/crash_recovery.py
"""

import random

from repro.core import ProcedureManager
from repro.model import ModelParams
from repro.workload import build_database, build_procedures
from repro.workload.runner import make_strategy

PARAMS = ModelParams(
    n_tuples=5_000,
    num_p1=15,
    num_p2=15,
    selectivity_f=0.005,
    selectivity_f2=0.2,
    tuples_per_update=8,
).with_update_probability(0.5)

STEPS = 200
CRASH_EVERY = 60


def run_with_scheme(scheme_name: str, verify: bool = False):
    db = build_database(PARAMS, seed=77)
    pop = build_procedures(db, PARAMS, model=1, seed=77)
    strategy = make_strategy(
        "cache_invalidate", db, PARAMS, invalidation_scheme=scheme_name
    )
    manager = ProcedureManager(strategy)
    oracle_mgr = None
    if verify:
        oracle = make_strategy("always_recompute", db, PARAMS)
        oracle_mgr = ProcedureManager(oracle)
    for name, expr in pop.definitions:
        manager.define_procedure(name, expr)
        if oracle_mgr is not None:
            oracle_mgr.define_procedure(name, expr)

    rng = random.Random(77)
    crashes = 0
    stale_answers = 0
    for step in range(STEPS):
        if scheme_name == "wal" and step and step % CRASH_EVERY == 0:
            strategy.scheme.crash_and_recover()
            crashes += 1
        if rng.random() < PARAMS.update_probability:
            positions = rng.sample(range(len(db.r1_rids)), 8)
            changes = []
            for pos in positions:
                rid = db.r1_rids[pos]
                old = db.r1.heap.read(rid)
                changes.append((rid, (old[0], rng.randrange(db.sel_domain), old[2])))
            manager.update("R1", changes, cluster_field="sel")
            for pos, new_rid in zip(positions, manager.last_rids):
                db.r1_rids[pos] = new_rid
        else:
            name = pop.names[rng.randrange(len(pop.names))]
            answer = sorted(manager.access(name).rows)
            if oracle_mgr is not None:
                if answer != sorted(oracle_mgr.access(name).rows):
                    stale_answers += 1
    return manager.cost_per_access(), crashes, stale_answers


def main() -> None:
    print(__doc__)
    wal_cost, crashes, stale = run_with_scheme("wal", verify=True)
    print(
        f"WAL scheme:       {wal_cost:8.1f} ms/access "
        f"({crashes} crashes survived, {stale} stale answers served)"
    )
    assert stale == 0, "recovery must never serve a stale cache"
    flag_cost, _c, _s = run_with_scheme("page_flag")
    battery_cost, _c, _s = run_with_scheme("battery")
    print(f"page-flag scheme: {flag_cost:8.1f} ms/access (2 I/Os per invalidation)")
    print(f"battery scheme:   {battery_cost:8.1f} ms/access (the unattainable floor)")
    print(
        f"\nThe WAL recovers exactly like the paper prescribes and keeps CI "
        f"within {wal_cost / battery_cost:.2f}x of the battery-backed floor, "
        f"vs {flag_cost / battery_cost:.2f}x for the naive page flag."
    )


if __name__ == "__main__":
    main()
