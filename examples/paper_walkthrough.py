#!/usr/bin/env python3
"""The paper's own §2 worked example, replayed on the real Rete network.

The paper illustrates Rete view maintenance with::

    EMP(name, age, dept, salary, job)
    DEPT(dname, floor)

    /* all programmers who work on the first floor */
    define view PROGS1 (EMP.all, DEPT.all)
    where EMP.dept = DEPT.dname and EMP.job = "Programmer" and DEPT.floor = 1

    /* all clerks who work on the first floor */
    define view CLERKS1 ...

and walks a token for the inserted tuple

    <name="Susan", age=28, dept="Accounting", salary=30K, job="Programmer">

through the network: it fails the DEPT branch, fails "job = Clerk", passes
"job = Programmer", joins the α-memory holding <dname="Accounting",
floor=1>, and lands in PROGS1's β-memory. This script builds that exact
network (from the QUEL text, via the parser), prints its structure —
including the shared "DEPT.floor = 1" subexpression the paper points out —
inserts Susan, and shows the token's effect.

Run:  python examples/paper_walkthrough.py
"""

from repro.core import ProcedureManager, UpdateCacheRVM
from repro.query import parse_retrieve
from repro.sim import CostClock
from repro.storage import BufferPool, Catalog, DiskManager, Field, FieldKind, Schema

PROGS1 = (
    "retrieve (EMP.all, DEPT.all) "
    "where EMP.dept = DEPT.dname "
    'and EMP.job = "Programmer" and DEPT.floor = 1'
)
CLERKS1 = (
    "retrieve (EMP.all, DEPT.all) "
    "where EMP.dept = DEPT.dname "
    'and EMP.job = "Clerk" and DEPT.floor = 1'
)


def main() -> None:
    print(__doc__)
    clock = CostClock()
    catalog = Catalog(BufferPool(DiskManager(clock)))

    dept = catalog.create_relation(
        "DEPT",
        Schema([Field("dname", FieldKind.STR), Field("floor")], 100),
    )
    dept.insert(("Accounting", 1))
    dept.insert(("Shipping", 2))
    dept.insert(("Sales", 1))
    dept.create_hash_index("dname")

    emp = catalog.create_relation(
        "EMP",
        Schema(
            [
                Field("name", FieldKind.STR),
                Field("age"),
                Field("dept", FieldKind.STR),
                Field("salary"),
                Field("job", FieldKind.STR),
            ],
            100,
        ),
    )
    emp.insert(("Mike", 31, "Shipping", 28_000, "Clerk"))
    emp.insert(("Ann", 42, "Accounting", 45_000, "Clerk"))
    emp.insert(("Jim", 29, "Sales", 35_000, "Programmer"))
    emp.create_hash_index("dept")

    strategy = UpdateCacheRVM(catalog, catalog.buffer, clock)
    manager = ProcedureManager(strategy)
    manager.define_procedure("PROGS1", parse_retrieve(PROGS1))
    manager.define_procedure("CLERKS1", parse_retrieve(CLERKS1))

    print("--- the compiled Rete network ---")
    print(strategy.network.describe())
    report = strategy.sharing_report()
    print(
        f"\n(The 'DEPT.floor = 1' chain is shared by both views: "
        f"{report['shared_memories']} shared memory, "
        f"{report['shared_tconsts']} shared t-const.)\n"
    )

    print("PROGS1 before the insert:", manager.access("PROGS1").rows)

    susan = ("Susan", 28, "Accounting", 30_000, "Programmer")
    print(f"\ninserting EMP tuple {susan} ...")
    before = clock.snapshot()
    manager.insert("EMP", [susan])
    delta = clock.snapshot() - before
    print(
        f"token propagation charged {delta.cpu_tests} screens and "
        f"{delta.disk_ios} page I/Os"
    )

    progs = manager.access("PROGS1").rows
    clerks = manager.access("CLERKS1").rows
    print("\nPROGS1 after the insert:")
    for row in sorted(progs):
        print(f"  {row}")
    print("CLERKS1 after the insert (unchanged):")
    for row in sorted(clerks):
        print(f"  {row}")

    assert any(row[0] == "Susan" for row in progs), "Susan must join PROGS1"
    assert not any(row[0] == "Susan" for row in clerks)
    print(
        "\nExactly the paper's walkthrough: Susan's token passed "
        "'job = Programmer',\njoined <dname='Accounting', floor=1> in the "
        "opposite alpha-memory, and was\nadded to PROGS1's beta-memory — "
        "while CLERKS1 never saw it."
    )


if __name__ == "__main__":
    main()
