#!/usr/bin/env python3
"""Scenario: complex screen objects with shared subobjects.

The paper's introduction motivates database procedures with "complex
objects with shared subobjects (e.g. a form with trim, labels and icons)".
This example builds that workload directly against the engine's public
API — no workload generator — and shows why the Rete-based Update Cache
(RVM) is the right strategy for it:

- ``WIDGETS(widget_id, form_key, theme)``: every widget placed on any form,
  keyed by the form range it belongs to (the frequently-edited relation —
  designers move and restyle widgets all day).
- ``THEMES(theme_id, theme_key, palette, icon_set)``: shared visual themes.
- ``ICONS(icon_id, icon_key, glyph)``: the icon library.

Each *form* is a database procedure: "give me all my widgets joined to
their theme and icons". Forms on the same screen family share the same
widget range — a shared subexpression the Rete network maintains once.

Run:  python examples/form_objects.py
"""

import random

from repro.core import ProcedureManager, UpdateCacheAVM, UpdateCacheRVM
from repro.query import Interval, Join, RelationRef, Select
from repro.query.predicate import And
from repro.sim import CostClock, CostParams
from repro.storage import BufferPool, Catalog, DiskManager, Field, Schema

NUM_WIDGETS = 4_000
NUM_THEMES = 40
NUM_ICONS = 120
FORMS_PER_FAMILY = 6
NUM_FAMILIES = 10
EDIT_TRANSACTIONS = 60
WIDGETS_PER_EDIT = 8


def build_design_database(seed: int = 2):
    clock = CostClock(CostParams())
    catalog = Catalog(BufferPool(DiskManager(clock)))
    rng = random.Random(seed)

    icons = catalog.create_relation(
        "ICONS",
        Schema([Field("icon_id"), Field("icon_key"), Field("glyph")], 100),
    )
    for i in range(NUM_ICONS):
        icons.insert((i, i, rng.randrange(10_000)))
    icons.create_hash_index("icon_key")

    themes = catalog.create_relation(
        "THEMES",
        Schema(
            [Field("theme_id"), Field("theme_key"), Field("palette"), Field("icon_ref")],
            100,
        ),
    )
    for t in range(NUM_THEMES):
        themes.insert((t, t, rng.randrange(256), rng.randrange(NUM_ICONS)))
    themes.create_hash_index("theme_key")

    widgets = catalog.create_relation(
        "WIDGETS",
        Schema([Field("widget_id"), Field("form_key"), Field("theme")], 100),
        fill_factor=0.9,
    )
    keys = sorted(rng.randrange(NUM_WIDGETS) for _ in range(NUM_WIDGETS))
    rids = [
        widgets.insert((i, key, rng.randrange(NUM_THEMES)))
        for i, key in enumerate(keys)
    ]
    widgets.create_btree_index("form_key")
    clock.reset()
    return catalog, clock, rng, rids


def form_procedure(lo: int, hi: int):
    """A form = its widgets joined to theme and icons."""
    return Select(
        Join(
            Join(RelationRef("WIDGETS"), RelationRef("THEMES"), "theme", "theme_key"),
            RelationRef("ICONS"),
            "icon_ref",
            "icon_key",
        ),
        And(Interval("form_key", lo, hi)),
    )


def run(strategy_cls, seed: int = 2) -> float:
    catalog, clock, rng, rids = build_design_database(seed)
    manager = ProcedureManager(
        strategy_cls(catalog, catalog.buffer, clock, result_tuple_bytes=100)
    )

    # Forms of a family share the widget range — under RVM the shared
    # subexpression (the widget α-memory and its theme/icon β-chain) is
    # maintained once per family.
    family_width = NUM_WIDGETS // NUM_FAMILIES
    for family in range(NUM_FAMILIES):
        lo = family * family_width
        for form in range(FORMS_PER_FAMILY):
            manager.define_procedure(
                f"form_{family}_{form}", form_procedure(lo, lo + family_width)
            )

    widgets = catalog.get("WIDGETS")
    names = manager.procedure_names
    for _ in range(EDIT_TRANSACTIONS):
        # A designer edit: restyle a handful of widgets...
        changes = []
        for rid in rng.sample(rids, WIDGETS_PER_EDIT):
            old = widgets.heap.read(rid)
            changes.append((rid, (old[0], old[1], rng.randrange(NUM_THEMES))))
        manager.update("WIDGETS", changes)
        # ...then the editor re-renders three random forms.
        for _ in range(3):
            manager.access(names[rng.randrange(len(names))])

    return manager.cost_per_access()


def main() -> None:
    print(__doc__)
    avm = run(UpdateCacheAVM)
    rvm = run(UpdateCacheRVM)
    print(f"Update Cache, non-shared (AVM): {avm:9.1f} simulated ms per render")
    print(f"Update Cache, shared (RVM):     {rvm:9.1f} simulated ms per render")
    print(
        f"\nSharing factor here is ~{1 - 1 / FORMS_PER_FAMILY:.2f} "
        f"({FORMS_PER_FAMILY} forms per family share one subexpression), and "
        f"the form query is a 3-way join,\nso per the paper's model-2 analysis "
        f"(Figure 18, crossover at SF~0.47) RVM should win: "
        f"{'yes' if rvm < avm else 'no'} "
        f"({avm / rvm:.2f}x)."
    )


if __name__ == "__main__":
    main()
